//! The neuromorphic processing element (NPE) and its neuron models.
//!
//! An NPE is a serial chain of state controllers (Fig. 9). With every SC
//! configured to emit on its 1 -> 0 flip, the chain is an asynchronous
//! ripple counter: each SC holds one bit, a carry propagates as a pulse,
//! and the final SC's output pulse is the neuron's spike. Pre-loading the
//! counter to `2^K - threshold` makes the chain fire after exactly
//! `threshold` input pulses — this is how the multi-state element
//! "represents the states of the neuron model" without memory.
//!
//! Three models are provided:
//!
//! * [`NpeChain`] — the behavioural SC chain, bit-exact with the cell-level
//!   netlist from [`NpeNetlist`];
//! * [`BioNeuron`] — the biological neuron state machine of Figs. 6/7
//!   (below-threshold / rising / falling-undershoot phases);
//! * [`SsnnNeuron`] — the stateless neuron of Section 5.1 used for SSNN
//!   inference (accumulate within a time step, fire, reset to zero).

use crate::state_controller::{ScBehavior, ScNetlist, ScPorts};
use serde::{Deserialize, Serialize};
use sushi_cells::Ps;
use sushi_sim::{Netlist, NetlistError, PortRef};

/// Wire delay between consecutive SCs in a generated NPE chain, in ps.
const INTER_SC_DELAY_PS: Ps = 10.0;

/// Behavioural NPE: a chain of [`ScBehavior`]s acting as a ripple counter.
///
/// # Examples
///
/// ```
/// use sushi_arch::NpeChain;
///
/// let mut npe = NpeChain::new(4); // 16 states
/// npe.preload_threshold(5);
/// let fired: Vec<bool> = (0..5).map(|_| npe.pulse_in()).collect();
/// assert_eq!(fired, vec![false, false, false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpeChain {
    scs: Vec<ScBehavior>,
}

impl NpeChain {
    /// A chain of `k` state controllers (`2^k` states), outputs disabled.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 31`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0 && k < 32, "chain length must be in 1..=31, got {k}");
        Self {
            scs: vec![ScBehavior::new(); k],
        }
    }

    /// Number of SCs in the chain.
    pub fn len(&self) -> usize {
        self.scs.len()
    }

    /// True if the chain is empty (never: `new` requires `k > 0`).
    pub fn is_empty(&self) -> bool {
        self.scs.is_empty()
    }

    /// Number of representable states (`2^k`).
    pub fn num_states(&self) -> u64 {
        1u64 << self.scs.len()
    }

    /// The current counter value (LSB = first SC).
    pub fn value(&self) -> u64 {
        self.scs
            .iter()
            .enumerate()
            .map(|(i, sc)| u64::from(sc.state()) << i)
            .sum()
    }

    /// Applies one input pulse; returns true if the chain's final SC emits
    /// (the neuron spike / counter overflow in increment mode, or a
    /// spurious borrow-out in decrement mode).
    pub fn pulse_in(&mut self) -> bool {
        let mut carry = true;
        for sc in &mut self.scs {
            if !carry {
                return false;
            }
            carry = sc.pulse_in();
        }
        carry
    }

    /// Configures every SC to emit on fall (set1): input pulses *increment*
    /// the counter, with carries rippling on each bit's 1 -> 0 flip. This
    /// is the excitatory polarity.
    pub fn set_increment(&mut self) {
        for sc in &mut self.scs {
            sc.set1();
        }
    }

    /// Configures every SC to emit on rise (set0): input pulses *decrement*
    /// the counter, with borrows rippling on each bit's 0 -> 1 flip. This
    /// is the inhibitory polarity — weight polarity "is only distinguished
    /// when the weights reach the neuron, through the set channels".
    ///
    /// A borrow out of the final SC is a *spurious* spike: the underflow
    /// failure mode that synapse bucketing exists to prevent.
    pub fn set_decrement(&mut self) {
        for sc in &mut self.scs {
            sc.set0();
        }
    }

    /// Zeroes every SC and writes `value` through the per-SC write channels
    /// while outputs are disabled (so the writes cannot ripple), then
    /// configures every SC to carry (emit-on-fall).
    ///
    /// # Panics
    ///
    /// Panics if `value >= 2^k`.
    pub fn preload(&mut self, value: u64) {
        assert!(
            value < self.num_states(),
            "preload {value} exceeds {} states",
            self.num_states()
        );
        for sc in &mut self.scs {
            sc.disable();
            sc.zero();
        }
        for (i, sc) in self.scs.iter_mut().enumerate() {
            if (value >> i) & 1 == 1 {
                sc.write();
            }
        }
        for sc in &mut self.scs {
            sc.set1(); // carry on the 1 -> 0 flip
        }
        debug_assert_eq!(self.value(), value);
    }

    /// Preloads so that the chain fires on exactly the `threshold`-th input
    /// pulse (and every `2^k` pulses after).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is 0 or exceeds `2^k`.
    pub fn preload_threshold(&mut self, threshold: u64) {
        assert!(
            threshold >= 1 && threshold <= self.num_states(),
            "threshold {threshold} not in 1..={}",
            self.num_states()
        );
        self.preload(self.num_states() - threshold);
    }

    /// Reads each SC through the rst/read protocol, returning the counter
    /// value. Clears the monitors (the counter value itself is preserved;
    /// use [`NpeChain::preload`] to re-initialise).
    pub fn read_value(&mut self) -> u64 {
        self.scs
            .iter_mut()
            .enumerate()
            .map(|(i, sc)| u64::from(sc.rst_read()) << i)
            .sum()
    }
}

/// Cell-level ports of a generated NPE.
#[derive(Debug, Clone)]
pub struct NpePorts {
    /// Chain data input (first SC's `in`).
    pub input: PortRef,
    /// Chain spike output (last SC's `out`).
    pub out: PortRef,
    /// Per-SC control ports, in chain order.
    pub scs: Vec<ScPorts>,
}

/// Generates the cell-level NPE of Fig. 9 into a [`Netlist`].
#[derive(Debug, Clone, Copy)]
pub struct NpeNetlist;

impl NpeNetlist {
    /// Emits a `k`-SC NPE labelled with `prefix`; SCs are serially linked.
    ///
    /// # Errors
    ///
    /// Propagates netlist wiring errors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build(netlist: &mut Netlist, prefix: &str, k: usize) -> Result<NpePorts, NetlistError> {
        assert!(k > 0, "an NPE needs at least one SC");
        let mut scs = Vec::with_capacity(k);
        for i in 0..k {
            scs.push(ScNetlist::build(netlist, &format!("{prefix}.sc{i}"))?);
        }
        for w in scs.windows(2) {
            netlist.connect_with_delay(
                w[0].out.cell,
                w[0].out.port,
                w[1].input.cell,
                w[1].input.port,
                INTER_SC_DELAY_PS,
            )?;
        }
        Ok(NpePorts {
            input: scs[0].input,
            out: scs[k - 1].out,
            scs,
        })
    }

    /// Logic JJ count of a `k`-SC NPE under `library`.
    pub fn logic_jj(library: &sushi_cells::CellLibrary, k: usize) -> u64 {
        ScNetlist::logic_jj(library) * k as u64
    }
}

/// Phase of the biological neuron model (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BioPhase {
    /// Below-threshold state `b_t` (t accumulated spikes).
    Below(u32),
    /// Rising-phase state `r_i`.
    Rising(u32),
    /// Falling & undershoot state `f_i`.
    Falling(u32),
}

/// The biological neuron state machine of Figs. 6/7.
///
/// Spike stimuli climb the below-threshold ladder `b_0 .. b_threshold`;
/// time stimuli leak one step back down, or — once at `b_threshold` — march
/// through the rising phase (emitting the output spike on the
/// `r_{R-1} -> r_R` transition), the falling/undershoot phase, and return
/// to rest.
///
/// # Examples
///
/// ```
/// use sushi_arch::BioNeuron;
///
/// let mut n = BioNeuron::new(2, 3, 2);
/// n.on_spike();
/// n.on_spike(); // reaches b_threshold
/// let spikes: Vec<bool> = (0..4).map(|_| n.on_time()).collect();
/// assert_eq!(spikes.iter().filter(|s| **s).count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BioNeuron {
    threshold: u32,
    rising: u32,
    falling: u32,
    phase: BioPhase,
}

impl BioNeuron {
    /// A neuron needing `threshold` spikes, with `rising` rise states and
    /// `falling` fall states.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or `rising` is zero.
    pub fn new(threshold: u32, rising: u32, falling: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        assert!(rising > 0, "rising phase needs at least one state");
        Self {
            threshold,
            rising,
            falling,
            phase: BioPhase::Below(0),
        }
    }

    /// The current phase.
    pub fn phase(&self) -> BioPhase {
        self.phase
    }

    /// Total number of distinct states this neuron uses.
    pub fn state_count(&self) -> u32 {
        (self.threshold + 1) + (self.rising + 1) + (self.falling + 1)
    }

    /// Applies a spike stimulus: `δ(b_t, spike) = b_{t+1}` up to the
    /// threshold; spikes during the rising/falling phases are refractory
    /// ("failed initiations") and ignored.
    pub fn on_spike(&mut self) {
        if let BioPhase::Below(t) = self.phase {
            if t < self.threshold {
                self.phase = BioPhase::Below(t + 1);
            }
        }
    }

    /// Applies a time stimulus per Fig. 7; returns true when the output
    /// spike is sent (the `r_{R-1} -> r_R` transition).
    pub fn on_time(&mut self) -> bool {
        match self.phase {
            BioPhase::Below(0) => false, // δ(b0, time) = b0
            BioPhase::Below(t) if t < self.threshold => {
                self.phase = BioPhase::Below(t - 1); // leak
                false
            }
            BioPhase::Below(_) => {
                self.phase = BioPhase::Rising(0); // δ(b_threshold, time) = r0
                false
            }
            BioPhase::Rising(i) if i + 1 < self.rising => {
                self.phase = BioPhase::Rising(i + 1);
                false
            }
            BioPhase::Rising(i) if i + 1 == self.rising => {
                self.phase = BioPhase::Rising(i + 1); // r_{R-1} -> r_R: fire
                true
            }
            BioPhase::Rising(_) => {
                self.phase = BioPhase::Falling(0); // δ(r_R, time) = f0
                false
            }
            BioPhase::Falling(i) if i < self.falling => {
                self.phase = BioPhase::Falling(i + 1);
                false
            }
            BioPhase::Falling(_) => {
                self.phase = BioPhase::Below(0); // δ(f_F, time) = b0
                false
            }
        }
    }
}

/// The stateless SSNN neuron of Section 5.1.
///
/// Within a time step it accumulates ±1 synaptic contributions; at the end
/// of the step it fires iff the accumulated potential reached the threshold
/// and resets to zero ("we simplify the reset procedure by resetting the
/// membrane potential to zero at the end of each time step").
///
/// The hardware realisation is a bounded counter ([`NpeChain`]), so the
/// model tracks the excursion range and flags overflow — the failure mode
/// that the synapse bucketing/reordering algorithm exists to prevent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsnnNeuron {
    potential: i64,
    threshold: i64,
    /// Counter capacity of the backing NPE (`2^k` states).
    num_states: u64,
    /// Counter offset: the hardware counter holds `potential + offset`.
    offset: i64,
    min_seen: i64,
    max_seen: i64,
    overflowed: bool,
}

impl SsnnNeuron {
    /// A neuron with integer `threshold`, backed by a counter of
    /// `num_states` states pre-offset by `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 1` or `num_states == 0`.
    pub fn new(threshold: i64, num_states: u64, offset: i64) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        assert!(num_states > 0, "counter needs at least one state");
        Self {
            potential: 0,
            threshold,
            num_states,
            offset,
            min_seen: 0,
            max_seen: 0,
            overflowed: false,
        }
    }

    /// Current within-step potential.
    pub fn potential(&self) -> i64 {
        self.potential
    }

    /// Applies one synaptic pulse of polarity `excitatory` (+1) or
    /// inhibitory (−1).
    pub fn apply(&mut self, excitatory: bool) {
        self.potential += if excitatory { 1 } else { -1 };
        self.min_seen = self.min_seen.min(self.potential);
        self.max_seen = self.max_seen.max(self.potential);
        let hw = self.potential + self.offset;
        if hw < 0 || hw >= self.num_states as i64 {
            self.overflowed = true;
        }
    }

    /// Ends the time step: returns whether the neuron fires, and resets the
    /// potential to zero.
    pub fn end_of_step(&mut self) -> bool {
        let fired = self.potential >= self.threshold;
        self.potential = 0;
        fired
    }

    /// The potential excursion `(min, max)` observed since construction.
    pub fn excursion(&self) -> (i64, i64) {
        (self.min_seen, self.max_seen)
    }

    /// True if the backing counter would have over- or under-flowed.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_cells::CellLibrary;
    use sushi_sim::SimConfig;

    #[test]
    fn chain_counts_in_binary() {
        let mut npe = NpeChain::new(4);
        npe.preload(0);
        for expect in 1..16u64 {
            assert!(!npe.pulse_in());
            assert_eq!(npe.value(), expect);
        }
        // 16th pulse overflows: carry out, value wraps to 0.
        assert!(npe.pulse_in());
        assert_eq!(npe.value(), 0);
    }

    #[test]
    fn preload_threshold_fires_exactly_on_time() {
        for threshold in 1..=16u64 {
            let mut npe = NpeChain::new(4);
            npe.preload_threshold(threshold);
            for i in 1..threshold {
                assert!(!npe.pulse_in(), "t={threshold} premature at {i}");
            }
            assert!(npe.pulse_in(), "t={threshold} failed to fire");
        }
    }

    #[test]
    fn chain_fires_periodically_after_overflow() {
        let mut npe = NpeChain::new(3); // period 8
        npe.preload_threshold(3);
        // Fires at pulses 3, 11, 19.
        let fired_at: Vec<u32> = (1..=19u32).filter(|_| npe.pulse_in()).collect();
        assert_eq!(fired_at, vec![3, 11, 19]);
    }

    #[test]
    fn decrement_mode_counts_down() {
        let mut npe = NpeChain::new(4);
        npe.preload(5);
        npe.set_decrement();
        for expect in (0..5u64).rev() {
            assert!(!npe.pulse_in(), "no borrow-out while value > 0");
            assert_eq!(npe.value(), expect);
        }
        // Underflow: borrow out of the MSB is a spurious spike.
        assert!(npe.pulse_in());
        assert_eq!(npe.value(), 15);
    }

    #[test]
    fn polarity_switching_mixes_up_and_down() {
        let mut npe = NpeChain::new(5);
        npe.preload(10);
        npe.set_increment();
        for _ in 0..7 {
            npe.pulse_in();
        }
        assert_eq!(npe.value(), 17);
        npe.set_decrement();
        for _ in 0..4 {
            npe.pulse_in();
        }
        assert_eq!(npe.value(), 13);
        npe.set_increment();
        npe.pulse_in();
        assert_eq!(npe.value(), 14);
    }

    /// The cell-level chain also counts down when every SC is set0.
    #[test]
    fn cell_level_decrement_matches_behavioral() {
        let lib = CellLibrary::nb03();
        let k = 3usize;
        let preload = 5u64;
        let pulses = 5usize;
        let mut chain = NpeChain::new(k);
        chain.preload(preload);
        chain.set_decrement();
        let mut expected = 0usize;
        for _ in 0..pulses {
            if chain.pulse_in() {
                expected += 1;
            }
        }
        let mut n = Netlist::new();
        let ports = NpeNetlist::build(&mut n, "npe", k).unwrap();
        n.add_input("in", ports.input.cell, ports.input.port)
            .unwrap();
        n.probe("out", ports.out.cell, ports.out.port).unwrap();
        for (i, sc) in ports.scs.iter().enumerate() {
            n.add_input(format!("set0_{i}"), sc.set0.cell, sc.set0.port)
                .unwrap();
            n.add_input(format!("write_{i}"), sc.write.cell, sc.write.port)
                .unwrap();
        }
        let mut sim = SimConfig::new().build(&n, &lib);
        for i in 0..k {
            if (preload >> i) & 1 == 1 {
                sim.inject(&format!("write_{i}"), &[100.0 + 50.0 * i as Ps])
                    .unwrap();
            }
        }
        for i in 0..k {
            sim.inject(&format!("set0_{i}"), &[1000.0]).unwrap();
        }
        let times: Vec<Ps> = (0..pulses).map(|i| 2000.0 + 400.0 * i as Ps).collect();
        sim.inject("in", &times).unwrap();
        sim.run_to_completion().unwrap();
        assert_eq!(sim.pulses("out").len(), expected);
        assert!(sim.violations().is_empty(), "{:?}", sim.violations());
    }

    #[test]
    fn read_value_reports_counter() {
        let mut npe = NpeChain::new(4);
        npe.preload(0);
        for _ in 0..5 {
            npe.pulse_in();
        }
        assert_eq!(npe.read_value(), 5);
    }

    #[test]
    #[should_panic(expected = "preload")]
    fn preload_out_of_range_panics() {
        NpeChain::new(3).preload(8);
    }

    #[test]
    fn cell_level_npe_matches_behavioral_chain() {
        let lib = CellLibrary::nb03();
        for (k, threshold, pulses) in [(2usize, 3u64, 7usize), (3, 5, 9), (4, 10, 12)] {
            // Behavioural.
            let mut chain = NpeChain::new(k);
            chain.preload_threshold(threshold);
            let mut expected = 0usize;
            for _ in 0..pulses {
                if chain.pulse_in() {
                    expected += 1;
                }
            }
            // Cell-level: preload by pulsing set1 on all SCs and writing bits.
            let mut n = Netlist::new();
            let ports = NpeNetlist::build(&mut n, "npe", k).unwrap();
            n.add_input("in", ports.input.cell, ports.input.port)
                .unwrap();
            n.probe("out", ports.out.cell, ports.out.port).unwrap();
            for (i, sc) in ports.scs.iter().enumerate() {
                n.add_input(format!("set1_{i}"), sc.set1.cell, sc.set1.port)
                    .unwrap();
                n.add_input(format!("write_{i}"), sc.write.cell, sc.write.port)
                    .unwrap();
            }
            let mut sim = SimConfig::new().build(&n, &lib);
            // Write preload bits while outputs are disabled (t < 1000).
            let preload = (1u64 << k) - threshold;
            for i in 0..k {
                if (preload >> i) & 1 == 1 {
                    sim.inject(&format!("write_{i}"), &[100.0 + 50.0 * i as Ps])
                        .unwrap();
                }
            }
            // Enable carry mode, then pulse.
            for i in 0..k {
                sim.inject(&format!("set1_{i}"), &[1000.0]).unwrap();
            }
            let times: Vec<Ps> = (0..pulses).map(|i| 2000.0 + 400.0 * i as Ps).collect();
            sim.inject("in", &times).unwrap();
            sim.run_to_completion().unwrap();
            assert_eq!(
                sim.pulses("out").len(),
                expected,
                "k={k} threshold={threshold} pulses={pulses}"
            );
            assert!(sim.violations().is_empty(), "{:?}", sim.violations());
        }
    }

    #[test]
    fn bio_neuron_full_cycle() {
        let mut n = BioNeuron::new(3, 2, 2);
        // Two spikes then a leak tick: back to b1.
        n.on_spike();
        n.on_spike();
        assert_eq!(n.phase(), BioPhase::Below(2));
        assert!(!n.on_time());
        assert_eq!(n.phase(), BioPhase::Below(1));
        // Climb to threshold.
        n.on_spike();
        n.on_spike();
        assert_eq!(n.phase(), BioPhase::Below(3));
        // Time ticks: enter rising, fire on r_{R-1} -> r_R.
        assert!(!n.on_time()); // b3 -> r0
        assert!(!n.on_time()); // r0 -> r1? rising=2: r0 -> r1 is i+1<2 false for i=1...
        let fired = n.on_time();
        let _ = fired;
        // March until back at rest; exactly one spike total in the cycle.
        let mut spikes = u32::from(fired);
        for _ in 0..10 {
            spikes += u32::from(n.on_time());
        }
        assert_eq!(spikes, 1);
        assert_eq!(n.phase(), BioPhase::Below(0));
    }

    #[test]
    fn bio_neuron_spikes_during_refractory_ignored() {
        let mut n = BioNeuron::new(1, 2, 1);
        n.on_spike();
        n.on_time(); // enter rising
        let before = n.phase();
        n.on_spike(); // refractory: ignored
        assert_eq!(n.phase(), before);
    }

    #[test]
    fn bio_neuron_rest_is_absorbing_under_time() {
        let mut n = BioNeuron::new(2, 1, 1);
        for _ in 0..5 {
            assert!(!n.on_time());
            assert_eq!(n.phase(), BioPhase::Below(0));
        }
    }

    #[test]
    fn bio_neuron_state_count() {
        let n = BioNeuron::new(500, 10, 10);
        assert!(n.state_count() >= 500);
    }

    #[test]
    fn ssnn_neuron_fires_and_resets() {
        let mut n = SsnnNeuron::new(3, 1024, 0);
        n.apply(true);
        n.apply(true);
        assert!(!n.end_of_step()); // 2 < 3, resets
        for _ in 0..3 {
            n.apply(true);
        }
        assert!(n.end_of_step());
        assert_eq!(n.potential(), 0);
    }

    #[test]
    fn ssnn_neuron_tracks_excursion_and_overflow() {
        let mut n = SsnnNeuron::new(1, 4, 2); // hw range: potential in [-2, 1]
        n.apply(false);
        n.apply(false);
        assert_eq!(n.excursion(), (-2, 0));
        assert!(!n.overflowed());
        n.apply(false); // hw = -1: underflow
        assert!(n.overflowed());
    }

    #[test]
    fn ssnn_inhibition_cancels_excitation() {
        let mut n = SsnnNeuron::new(1, 1024, 512);
        n.apply(true);
        n.apply(false);
        assert!(!n.end_of_step());
    }
}
