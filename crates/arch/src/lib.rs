//! SUSHI architecture: generators and analytical models.
//!
//! This crate implements the architectural layer of the paper:
//!
//! * [`state_controller`] — the asynchronous state controller (SC) of
//!   Fig. 4/5/8, both as a cell-level netlist generator (for the
//!   `sushi-sim` cell-accurate path) and as a fast behavioural model;
//! * [`npe`] — the neuromorphic processing element: a serial chain of SCs
//!   forming a multi-state element (Fig. 9), the biological neuron state
//!   machine of Fig. 6/7, and the stateless SSNN neuron used for inference;
//! * [`weight`] — pulse-gain weight structures (Fig. 10);
//! * [`network`] — tree and mesh on-chip networks of NPEs (Fig. 11);
//! * [`floorplan`] — a grid floorplan giving route lengths for the wiring
//!   model;
//! * [`resources`] — JJ/area accounting split into logic vs wiring
//!   (Table 2, Fig. 13);
//! * [`chip`] — the chip generator combining all of the above;
//! * [`power`] — the performance / power / efficiency models behind
//!   Table 4 and Figs. 19–21.
//!
//! # Examples
//!
//! ```
//! use sushi_arch::chip::{ChipConfig, WeightConfig};
//!
//! // The paper's Table 2 configuration: a 4x4 mesh with weight structures.
//! let chip = ChipConfig::mesh(4).with_weights(WeightConfig::full()).build();
//! let r = chip.resources();
//! assert!(r.total_jj() > 40_000 && r.total_jj() < 52_000);
//! ```

pub mod chip;
pub mod floorplan;
pub mod network;
pub mod npe;
pub mod power;
pub mod resources;
pub mod scaleout;
pub mod state_controller;
pub mod sync_baseline;
pub mod weight;

pub use chip::{ChipConfig, ChipDesign, WeightConfig};
pub use network::NetworkKind;
pub use npe::{BioNeuron, NpeChain, SsnnNeuron};
pub use power::PerfModel;
pub use resources::ResourceReport;
pub use scaleout::{npe_mesh, MultiChip};
pub use state_controller::{ScBehavior, ScMode, ScNetlist};
pub use sync_baseline::SyncAccelerator;
pub use weight::WeightStructure;
