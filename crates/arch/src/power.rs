//! Performance, power and efficiency models (Table 4, Figs. 19–21).
//!
//! Neuromorphic performance is measured in synaptic operations per second:
//! `SOPS = avg.firing.rate x avg.active.synapses` (Section 6.3). For SUSHI
//! the peak rate is set by the synaptic pulse pipeline: one pulse traverses
//! the input converter, row bus, cross switch, column merge and neuron SC,
//! with every input line streaming pulses back-to-back. The per-pulse time
//! is a fixed logic-path delay plus a transmission delay that grows with
//! the mesh dimension — the paper's "transmission delay accounts for about
//! 53% of the total in the 16x16 design, while only about 6% in the 1x1".

use crate::chip::ChipDesign;
use serde::{Deserialize, Serialize};
use sushi_cells::{CellKind, Ps};

/// Cells traversed by one synaptic pulse from pad to neuron state flip.
///
/// DC/SFQ input, row splitter tap, cross-switch NDRO, column merge CB,
/// another merge stage, the neuron's toggle (TFF) and gate (NDRO), and the
/// SC output CB.
const SYNAPSE_LOGIC_PATH: [CellKind; 8] = [
    CellKind::DcSfq,
    CellKind::Spl2,
    CellKind::Cb2,
    CellKind::Ndro,
    CellKind::Cb2,
    CellKind::Tffl,
    CellKind::Ndro,
    CellKind::Cb2,
];

/// Average JJ flips per synaptic operation (for the dynamic-power term):
/// roughly the JJ count along [`SYNAPSE_LOGIC_PATH`].
const JJ_FLIPS_PER_SOP: f64 = 50.0;

/// Fraction of inference time spent reloading weights after the
/// reorder/bucket optimisation ("the optimized weight reloading accounts
/// for 20% of the total inference time on average", Section 4.2.2).
pub const RELOAD_TIME_SHARE: f64 = 0.20;

/// Fraction of peak synaptic slots filled by the bit-sliced schedule
/// (slices at layer boundaries leave some columns idle), combined with the
/// slice-transition efficiency. Calibrated so the Table 3 network reaches
/// the paper's 2.61e5 FPS on the peak chip.
pub const SLICE_UTILIZATION: f64 = 0.765;

/// Efficiency of slice-to-slice transitions (cross-switch reconfiguration
/// and pipeline drain between row blocks). A program's effective
/// utilization is its schedule fill factor times this;
/// `0.97 (fill) * 0.79 = 0.766 ~= SLICE_UTILIZATION` for the paper
/// network.
pub const SLICE_TRANSITION_EFFICIENCY: f64 = 0.79;

/// A per-configuration performance/power breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Mesh dimension.
    pub n: usize,
    /// NPE count (`2n`).
    pub npes: usize,
    /// Logic-path delay per synaptic op, ps.
    pub logic_ps: Ps,
    /// Transmission delay per synaptic op, ps.
    pub wire_ps: Ps,
    /// Peak performance in GSOPS.
    pub gsops: f64,
    /// Chip power in mW.
    pub power_mw: f64,
    /// Power efficiency in GSOPS/W.
    pub gsops_per_w: f64,
}

impl PerfPoint {
    /// Transmission delay's share of the total per-op latency.
    pub fn wire_share(&self) -> f64 {
        self.wire_ps / (self.logic_ps + self.wire_ps)
    }
}

/// The analytical performance model over a [`ChipDesign`].
///
/// # Examples
///
/// ```
/// use sushi_arch::chip::ChipConfig;
/// use sushi_arch::PerfModel;
///
/// let chip = ChipConfig::mesh(16).build();
/// let p = PerfModel::new(&chip).evaluate();
/// // Table 4: 1,355 GSOPS, 32,366 GSOPS/W (within model tolerance).
/// assert!((p.gsops - 1355.0).abs() / 1355.0 < 0.08);
/// assert!((p.gsops_per_w - 32_366.0).abs() / 32_366.0 < 0.10);
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel<'a> {
    chip: &'a ChipDesign,
}

impl<'a> PerfModel<'a> {
    /// A performance model for `chip`.
    pub fn new(chip: &'a ChipDesign) -> Self {
        Self { chip }
    }

    /// The fixed logic-path delay of one synaptic op, ps.
    pub fn logic_path_ps(&self) -> Ps {
        SYNAPSE_LOGIC_PATH
            .iter()
            .map(|k| self.chip.library().params(*k).delay_ps)
            .sum()
    }

    /// The transmission delay of one synaptic op, ps (grows with `n`).
    pub fn wire_delay_ps(&self) -> Ps {
        let fp = self.chip.floorplan();
        let route = fp.avg_synapse_route_mm() * self.chip.network().route_scale();
        self.chip.library().routing().wire_delay_ps(route)
    }

    /// Peak performance in GSOPS: all `n` input lines stream pulses at the
    /// per-op rate and each pulse activates `n` synapses.
    pub fn gsops(&self) -> f64 {
        let t_ps = self.logic_path_ps() + self.wire_delay_ps();
        self.chip.network().synapse_count() as f64 * 1000.0 / t_ps
    }

    /// Chip power in mW at peak activity (static bias + dynamic switching).
    pub fn power_mw(&self) -> f64 {
        let jj = self.chip.resources().total_jj();
        let static_mw = self.chip.library().static_power_mw(jj);
        let dynamic_mw = self
            .chip
            .library()
            .dynamic_power_mw(self.gsops() * 1e9, JJ_FLIPS_PER_SOP);
        static_mw + dynamic_mw
    }

    /// Power efficiency in GSOPS per Watt.
    pub fn gsops_per_w(&self) -> f64 {
        self.gsops() / (self.power_mw() * 1e-3)
    }

    /// Full evaluation snapshot.
    pub fn evaluate(&self) -> PerfPoint {
        PerfPoint {
            n: self.chip.n(),
            npes: self.chip.npe_count(),
            logic_ps: self.logic_path_ps(),
            wire_ps: self.wire_delay_ps(),
            gsops: self.gsops(),
            power_mw: self.power_mw(),
            gsops_per_w: self.gsops_per_w(),
        }
    }

    /// Sustained frames per second for a workload of `synops_per_frame`
    /// synaptic operations, accounting for weight-reload time and bit-slice
    /// schedule utilisation.
    ///
    /// # Panics
    ///
    /// Panics if `synops_per_frame == 0`.
    pub fn fps(&self, synops_per_frame: u64) -> f64 {
        assert!(
            synops_per_frame > 0,
            "a frame needs at least one synaptic op"
        );
        self.gsops() * 1e9 * (1.0 - RELOAD_TIME_SHARE) * SLICE_UTILIZATION / synops_per_frame as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipConfig;

    fn point(n: usize) -> PerfPoint {
        PerfModel::new(&ChipConfig::mesh(n).build()).evaluate()
    }

    /// Section 6.3A: wire share ~6% at 1x1, ~53% at 16x16.
    #[test]
    fn transmission_delay_shares_match_paper() {
        let p1 = point(1);
        let p16 = point(16);
        assert!(
            (p1.wire_share() - 0.06).abs() < 0.02,
            "1x1 share {}",
            p1.wire_share()
        );
        assert!(
            (p16.wire_share() - 0.53).abs() < 0.03,
            "16x16 share {}",
            p16.wire_share()
        );
    }

    /// Table 4: 1,355 GSOPS and 41.87 mW at 32 NPEs.
    #[test]
    fn peak_performance_and_power_match_table4() {
        let p = point(16);
        assert!(
            (p.gsops - 1355.0).abs() / 1355.0 < 0.08,
            "gsops {}",
            p.gsops
        );
        assert!(
            (p.power_mw - 41.87).abs() / 41.87 < 0.10,
            "power {}",
            p.power_mw
        );
        assert!(
            (p.gsops_per_w - 32_366.0).abs() / 32_366.0 < 0.12,
            "eff {}",
            p.gsops_per_w
        );
    }

    /// Fig. 19: performance grows with NPEs; the TrueNorth crossover (58
    /// GSOPS) falls between the 2x2 and 4x4 configurations.
    #[test]
    fn performance_sweep_shape() {
        let gs: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&n| point(n).gsops)
            .collect();
        for w in gs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(gs[1] < 58.0, "2x2 {} should be below TrueNorth", gs[1]);
        assert!(gs[2] > 58.0, "4x4 {} should beat TrueNorth", gs[2]);
    }

    /// Fig. 20: power grows with NPEs and stays in the tens of mW.
    #[test]
    fn power_sweep_shape() {
        let ps: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&n| point(n).power_mw)
            .collect();
        for w in ps.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ps[0] > 5.0 && ps[4] < 50.0, "{ps:?}");
    }

    /// Fig. 21: efficiency rises with scale, far above TrueNorth (400) and
    /// Tianjic (649).
    #[test]
    fn efficiency_sweep_shape() {
        let es: Vec<f64> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&n| point(n).gsops_per_w)
            .collect();
        for w in es.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(es[4] > 50.0 * 649.0 * 0.85, "peak efficiency {}", es[4]);
    }

    /// Section 6.3: up to 2.61e5 FPS on the Table 3 network
    /// (784*800 + 800*10 synapses x 5 time steps).
    #[test]
    fn fps_matches_paper() {
        let chip = ChipConfig::mesh(16).build();
        let synops_per_frame = (784 * 800 + 800 * 10) * 5;
        let fps = PerfModel::new(&chip).fps(synops_per_frame);
        assert!((fps - 2.61e5).abs() / 2.61e5 < 0.10, "fps {fps}");
    }

    #[test]
    fn dynamic_power_is_minor_but_positive() {
        let chip = ChipConfig::mesh(16).build();
        let m = PerfModel::new(&chip);
        let jj = chip.resources().total_jj();
        let static_mw = chip.library().static_power_mw(jj);
        assert!(m.power_mw() > static_mw);
        assert!(m.power_mw() < static_mw * 1.01);
    }

    #[test]
    fn tree_network_is_faster_per_op() {
        let mesh = ChipConfig::mesh(8).build();
        let tree = ChipConfig::tree(8).build();
        assert!(PerfModel::new(&tree).wire_delay_ps() < PerfModel::new(&mesh).wire_delay_ps());
    }
}
