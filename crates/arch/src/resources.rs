//! Resource accounting: Josephson junctions and area, split into logic vs
//! wiring (the paper's Table 2 and Fig. 13).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use sushi_cells::params::AREA_UM2_PER_JJ;

/// Resource component categories used in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// NPE state-controller logic.
    Npe,
    /// Network distribution/collection cells and cross-point switches.
    NetworkFabric,
    /// Weight-structure gain loops.
    WeightStructures,
    /// IO converters (DC/SFQ in, SFQ/DC out, control pads).
    Io,
    /// Intra-SC routing JTLs.
    IntraSc,
    /// Shared data buses (row/column).
    DataRoutes,
    /// Control-distribution lines (rst/set/read/write, weight config).
    ControlRoutes,
    /// Transmission-line crossings.
    Crossings,
    /// Weight-structure delay JTL sections.
    WeightDelays,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Npe => "NPE logic",
            Category::NetworkFabric => "network fabric",
            Category::WeightStructures => "weight structures",
            Category::Io => "IO converters",
            Category::IntraSc => "intra-SC routing",
            Category::DataRoutes => "data buses",
            Category::ControlRoutes => "control routes",
            Category::Crossings => "crossings",
            Category::WeightDelays => "weight delay lines",
        };
        f.write_str(s)
    }
}

/// A per-category JJ budget split into logic and wiring, with derived area.
///
/// # Examples
///
/// ```
/// use sushi_arch::resources::{Category, ResourceReport};
///
/// let mut r = ResourceReport::new();
/// r.add_logic(Category::Npe, 800);
/// r.add_wiring(Category::DataRoutes, 200);
/// assert_eq!(r.total_jj(), 1000);
/// assert!((r.wiring_fraction() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    logic: BTreeMap<Category, u64>,
    wiring: BTreeMap<Category, u64>,
}

impl ResourceReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds logic JJs under `category`.
    pub fn add_logic(&mut self, category: Category, jj: u64) {
        *self.logic.entry(category).or_insert(0) += jj;
    }

    /// Adds wiring JJs under `category`.
    pub fn add_wiring(&mut self, category: Category, jj: u64) {
        *self.wiring.entry(category).or_insert(0) += jj;
    }

    /// Total logic JJs.
    pub fn logic_jj(&self) -> u64 {
        self.logic.values().sum()
    }

    /// Total wiring JJs.
    pub fn wiring_jj(&self) -> u64 {
        self.wiring.values().sum()
    }

    /// Total JJs.
    pub fn total_jj(&self) -> u64 {
        self.logic_jj() + self.wiring_jj()
    }

    /// Wiring share of the total (0 for an empty report).
    pub fn wiring_fraction(&self) -> f64 {
        let total = self.total_jj();
        if total == 0 {
            0.0
        } else {
            self.wiring_jj() as f64 / total as f64
        }
    }

    /// Chip area in mm² under the per-JJ area constant.
    pub fn area_mm2(&self) -> f64 {
        self.total_jj() as f64 * AREA_UM2_PER_JJ * 1e-6
    }

    /// Per-category logic breakdown.
    pub fn logic_breakdown(&self) -> &BTreeMap<Category, u64> {
        &self.logic
    }

    /// Per-category wiring breakdown.
    pub fn wiring_breakdown(&self) -> &BTreeMap<Category, u64> {
        &self.wiring
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total JJs {:>8}    total area {:>7.2} mm^2",
            self.total_jj(),
            self.area_mm2()
        )?;
        writeln!(
            f,
            "wiring JJs {:>7} ({:>5.2}%)    logic JJs {:>7} ({:>5.2}%)",
            self.wiring_jj(),
            self.wiring_fraction() * 100.0,
            self.logic_jj(),
            (1.0 - self.wiring_fraction()) * 100.0
        )?;
        for (cat, jj) in &self.logic {
            writeln!(f, "  logic  {cat:<22} {jj:>8}")?;
        }
        for (cat, jj) in &self.wiring {
            writeln!(f, "  wiring {cat:<22} {jj:>8}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fraction() {
        let mut r = ResourceReport::new();
        r.add_logic(Category::Npe, 300);
        r.add_logic(Category::Io, 100);
        r.add_wiring(Category::DataRoutes, 600);
        assert_eq!(r.logic_jj(), 400);
        assert_eq!(r.wiring_jj(), 600);
        assert_eq!(r.total_jj(), 1000);
        assert!((r.wiring_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = ResourceReport::new();
        assert_eq!(r.total_jj(), 0);
        assert_eq!(r.wiring_fraction(), 0.0);
        assert_eq!(r.area_mm2(), 0.0);
    }

    #[test]
    fn area_uses_per_jj_constant() {
        let mut r = ResourceReport::new();
        r.add_logic(Category::Npe, 45_542);
        // Table 2 anchor: 45,542 JJs ~ 44.73 mm^2.
        assert!((r.area_mm2() - 44.72).abs() < 0.1, "{}", r.area_mm2());
    }

    #[test]
    fn repeated_adds_accumulate() {
        let mut r = ResourceReport::new();
        r.add_logic(Category::Npe, 10);
        r.add_logic(Category::Npe, 5);
        assert_eq!(r.logic_breakdown()[&Category::Npe], 15);
    }

    #[test]
    fn display_contains_table2_fields() {
        let mut r = ResourceReport::new();
        r.add_logic(Category::Npe, 100);
        r.add_wiring(Category::Crossings, 50);
        let s = r.to_string();
        assert!(s.contains("total JJs"));
        assert!(s.contains("wiring JJs"));
        assert!(s.contains("NPE logic"));
    }
}
