//! Property-based tests on the architecture models.

use proptest::prelude::*;
use sushi_arch::chip::{ChipConfig, WeightConfig};
use sushi_arch::npe::{BioNeuron, BioPhase, NpeChain};
use sushi_arch::scaleout::MultiChip;
use sushi_arch::weight::WeightStructure;
use sushi_arch::PerfModel;

proptest! {
    /// The NPE chain is arithmetic modulo 2^k: any interleaving of
    /// increments and decrements lands on (preload + sum) mod 2^k.
    #[test]
    fn chain_is_modular_arithmetic(
        k in 2usize..8,
        preload_frac in 0.0f64..1.0,
        ops in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let states = 1u64 << k;
        let preload = ((states - 1) as f64 * preload_frac) as u64;
        let mut chain = NpeChain::new(k);
        chain.preload(preload);
        let mut expected = i128::from(preload);
        for &up in &ops {
            if up {
                chain.set_increment();
                expected += 1;
            } else {
                chain.set_decrement();
                expected -= 1;
            }
            chain.pulse_in();
        }
        let m = i128::from(states);
        let expected_mod = ((expected % m) + m) % m;
        prop_assert_eq!(i128::from(chain.value()), expected_mod);
    }

    /// preload_threshold fires on exactly the threshold-th pulse and on
    /// every 2^k-th pulse after.
    #[test]
    fn threshold_firing_is_periodic(k in 2usize..8, tsel in 0.0f64..1.0, extra in 0usize..40) {
        let states = 1u64 << k;
        let threshold = 1 + ((states - 1) as f64 * tsel) as u64;
        let mut chain = NpeChain::new(k);
        chain.preload_threshold(threshold);
        let total = threshold as usize + extra;
        let fired: Vec<usize> = (1..=total).filter(|_| chain.pulse_in()).collect();
        prop_assert!(fired.contains(&(threshold as usize)));
        for f in &fired {
            prop_assert_eq!((*f as u64 + states - threshold) % states, 0, "fire at {}", f);
        }
    }

    /// The biological neuron emits at most one spike per full cycle and
    /// always returns to rest under sustained time stimulus.
    #[test]
    fn bio_neuron_cycles_to_rest(threshold in 1u32..20, rising in 1u32..8, falling in 0u32..8) {
        let mut n = BioNeuron::new(threshold, rising, falling);
        for _ in 0..threshold {
            n.on_spike();
        }
        let mut spikes = 0u32;
        for _ in 0..(threshold + rising + falling + 8) {
            spikes += u32::from(n.on_time());
        }
        prop_assert_eq!(spikes, 1);
        prop_assert_eq!(n.phase(), BioPhase::Below(0));
    }

    /// Under-threshold spike counts always leak back to rest.
    #[test]
    fn bio_neuron_leaks_to_rest(threshold in 2u32..20, partial in 1u32..19) {
        let partial = partial.min(threshold - 1);
        let mut n = BioNeuron::new(threshold, 2, 2);
        for _ in 0..partial {
            n.on_spike();
        }
        let mut fired = false;
        for _ in 0..partial + 2 {
            fired |= n.on_time();
        }
        prop_assert!(!fired, "failed initiation must not fire");
        prop_assert_eq!(n.phase(), BioPhase::Below(0));
    }

    /// Pulse-gain amplification is linear in the input pulse count.
    #[test]
    fn weight_gain_is_linear(max_gain in 1u32..32, gain_sel in 0.0f64..1.0, a in 0u64..1000, b in 0u64..1000) {
        let gain = 1 + ((max_gain - 1) as f64 * gain_sel) as u32;
        let mut w = WeightStructure::new(max_gain);
        w.configure(gain).unwrap();
        prop_assert_eq!(w.amplify(a) + w.amplify(b), w.amplify(a + b));
        prop_assert_eq!(w.amplify(1), u64::from(gain));
    }

    /// Resources grow monotonically with mesh size, SC depth and weight
    /// levels; area tracks JJs.
    #[test]
    fn resources_are_monotone(n in 1usize..12, k in 2usize..16) {
        let base = ChipConfig::mesh(n).with_sc_per_npe(k).build().resources();
        let bigger_mesh = ChipConfig::mesh(n + 1).with_sc_per_npe(k).build().resources();
        let deeper = ChipConfig::mesh(n).with_sc_per_npe(k + 1).build().resources();
        let weighted = ChipConfig::mesh(n)
            .with_sc_per_npe(k)
            .with_weights(WeightConfig::Full { levels: 4 })
            .build()
            .resources();
        prop_assert!(bigger_mesh.total_jj() > base.total_jj());
        prop_assert!(deeper.total_jj() > base.total_jj());
        prop_assert!(weighted.total_jj() > base.total_jj());
        prop_assert!(base.area_mm2() > 0.0);
    }

    /// Scale-out invariants: aggregate throughput is linear in dies,
    /// sustained throughput is monotone non-increasing in communication
    /// fraction and never exceeds the aggregate.
    #[test]
    fn scaleout_invariants(chips in 1usize..12, f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let board = MultiChip::new(chips, 8);
        let one = MultiChip::new(1, 8);
        prop_assert!((board.aggregate_gsops() / one.aggregate_gsops() - chips as f64).abs() < 1e-9);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let s_lo = board.sustained_gsops(lo);
        let s_hi = board.sustained_gsops(hi);
        prop_assert!(s_hi <= s_lo + 1e-9, "more communication cannot speed things up");
        prop_assert!(s_lo <= board.aggregate_gsops() + 1e-9);
        prop_assert!(board.power_mw() > 0.0);
    }

    /// GSOPS grows with mesh size while per-op latency also grows (wire
    /// share increases), and efficiency stays positive.
    #[test]
    fn perf_model_shape(n in 1usize..16) {
        let small = PerfModel::new(&ChipConfig::mesh(n).build()).evaluate();
        let large = PerfModel::new(&ChipConfig::mesh(n + 1).build()).evaluate();
        prop_assert!(large.gsops > small.gsops);
        prop_assert!(large.wire_ps > small.wire_ps);
        prop_assert!(small.gsops_per_w > 0.0);
        prop_assert!((0.0..1.0).contains(&small.wire_share()));
    }
}
