//! Serving-throughput benchmark: drives `sushi-serve` over the paper's
//! 784–800–10 shape with the crate's own load generator and emits the
//! `BENCH_serve.json` payload (assembled and validated by
//! `scripts/bench.sh`).
//!
//! Three scenarios:
//!
//! 1. **serialized** — `max_batch = 1`, one closed-loop client: every
//!    request is its own dispatch; the no-coalescing baseline.
//! 2. **batched** — `max_batch = 32`, 32 closed-loop clients: the
//!    micro-batcher coalesces concurrent requests into engine batches.
//! 3. **overload** — open-loop arrivals at 2x the measured batched
//!    rate: admission control must shed (`rejected > 0`) while the p99
//!    of *served* requests stays bounded by the queue, not the backlog.

use std::time::Duration;

use sushi_serve::loadgen::{self, LoadReport};
use sushi_serve::{ServeConfig, Server};
use sushi_sim::Json;
use sushi_ssnn::{PackedLayer, PackedSnn};

/// Images cycled through by the load generators.
const IMAGES: usize = 64;
/// Poisson time steps per image (matches the table 3 bench).
const FRAMES: usize = 10;

/// The paper's 784–800–10 shape with deterministic pseudorandom signs
/// and thresholds — the same recipe as `table3_inference.rs`, packed
/// directly.
fn paper_shape_packed(seed: u64) -> PackedSnn {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    let mut layer = |ins: usize, outs: usize| {
        let signs: Vec<i8> = (0..ins * outs)
            .map(|_| match next() % 8 {
                0 => 0, // open cross-point switch
                1..=3 => -1,
                _ => 1,
            })
            .collect();
        let thresholds: Vec<i64> = (0..outs).map(|_| 4 + (next() % 20) as i64).collect();
        PackedLayer::from_parts(&signs, ins, outs, &thresholds)
    };
    PackedSnn::from_layers(vec![layer(784, 800), layer(800, 10)])
}

/// `IMAGES` deterministic ~30%-dense spike images.
fn spike_images(seed: u64) -> Vec<Vec<Vec<bool>>> {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    (0..IMAGES)
        .map(|_| {
            (0..FRAMES)
                .map(|_| (0..784).map(|_| next() % 10 < 3).collect())
                .collect()
        })
        .collect()
}

fn report_lines(name: &str, r: &LoadReport) -> String {
    format!(
        "  {name:<11} {:>9.0} img/s  p50 {:>8.0} us  p99 {:>8.0} us  ok {:>7}  shed {:>6}",
        r.images_per_s, r.latency.p50_us, r.latency.p99_us, r.ok, r.rejected
    )
}

/// Runs the three scenarios and returns the human-readable table. When
/// the `SERVE_JSON` environment variable names a file, the raw JSON
/// payload is written there for `scripts/bench.sh` to assemble.
pub fn serve_report(quick: bool) -> String {
    let duration = if quick {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(3)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let snn = paper_shape_packed(0xD1CE);
    let images = spike_images(0xACED);
    // Served results must be bitwise identical to offline inference; pin
    // that before timing anything.
    let offline = snn.predict_batch(&images, host_cpus);

    // 1. Serialized baseline: no coalescing possible.
    let server = Server::start(
        snn.clone(),
        ServeConfig::new()
            .max_batch(1)
            .max_delay(Duration::from_micros(50))
            .shards(1)
            .executors(1),
    );
    {
        let handle = server.handle();
        for (img, &want) in images.iter().zip(&offline) {
            assert_eq!(
                handle.predict(img.clone()).expect("serve ok").class,
                want,
                "served prediction diverged from offline batch"
            );
        }
    }
    let serialized = loadgen::closed_loop(&server.handle(), &images, 1, duration);
    drop(server);

    // 2. Micro-batched: 32 concurrent clients, size trigger 32. The
    // queue bound (two full batches) keeps worst-case queueing delay —
    // and with it the overload p99 — small and predictable. The default
    // backend is Bitplane, so coalesced batches of >= bitplane_min_batch
    // take the 64-lane path automatically (`bitplane_batches` reports
    // how many did).
    let shards = host_cpus.min(4);
    let batched_cfg = ServeConfig::new()
        .max_batch(32)
        .max_delay(Duration::from_millis(2))
        .queue_capacity(64)
        .shards(shards)
        .executors(host_cpus);
    let server = Server::start(snn.clone(), batched_cfg.clone());
    let batched = loadgen::closed_loop(&server.handle(), &images, 32, duration);
    let batched_stats = server.stats();
    drop(server);

    // 3. Overload: open-loop arrivals at 2x the measured batched rate.
    // The sender pool is sized well past the queue bound so arrivals keep
    // their schedule even while admitted requests block on the drain —
    // admission control, not generator starvation, does the shedding.
    let target_rate = (2.0 * batched.images_per_s).max(100.0);
    let senders = 4 * batched_cfg.queue_capacity;
    let server = Server::start(snn, batched_cfg);
    let overload = loadgen::open_loop(&server.handle(), &images, target_rate, duration, senders);
    drop(server);

    let speedup = if serialized.images_per_s > 0.0 {
        batched.images_per_s / serialized.images_per_s
    } else {
        0.0
    };

    if let Ok(path) = std::env::var("SERVE_JSON") {
        let payload = Json::obj(vec![
            ("host_cpus", Json::UInt(host_cpus as u64)),
            ("images", Json::UInt(IMAGES as u64)),
            ("frames_per_image", Json::UInt(FRAMES as u64)),
            ("overload_target_rate_per_s", Json::Num(target_rate)),
            ("serialized", serialized.to_json()),
            ("batched", batched.to_json()),
            ("overload", overload.to_json()),
            (
                "headline",
                Json::obj(vec![
                    (
                        "serialized_images_per_s",
                        Json::Num(serialized.images_per_s),
                    ),
                    ("serialized_p50_us", Json::Num(serialized.latency.p50_us)),
                    ("batched_images_per_s", Json::Num(batched.images_per_s)),
                    ("batch_speedup", Json::Num(speedup)),
                    ("shards", Json::UInt(shards as u64)),
                    ("executors", Json::UInt(host_cpus as u64)),
                    ("stolen_batches", Json::UInt(batched_stats.stolen_batches)),
                    (
                        "mean_batch_size",
                        Json::Num(batched_stats.mean_batch_size()),
                    ),
                    (
                        "bitplane_batches",
                        Json::UInt(batched_stats.bitplane_batches),
                    ),
                    ("batched_p99_us", Json::Num(batched.latency.p99_us)),
                    ("overload_rejected", Json::UInt(overload.rejected)),
                    ("overload_p99_us", Json::Num(overload.latency.p99_us)),
                ]),
            ),
        ]);
        std::fs::write(&path, format!("{payload}\n")).expect("write SERVE_JSON");
    }

    let mut out = String::new();
    out.push_str(&format!(
        "serving throughput (sushi-serve, 784-800-10, {host_cpus} cpu):\n"
    ));
    out.push_str(&report_lines("serialized", &serialized));
    out.push('\n');
    out.push_str(&report_lines("batched", &batched));
    out.push('\n');
    out.push_str(&report_lines("overload", &overload));
    out.push('\n');
    out.push_str(&format!(
        "  batch speedup {speedup:.2}x, mean batch {:.1}, bitplane batches {}, overload target {target_rate:.0}/s\n",
        batched_stats.mean_batch_size(),
        batched_stats.bitplane_batches,
    ));
    out.push_str(&format!(
        "  pipeline: {shards} shards x {host_cpus} executors, {} stolen batches",
        batched_stats.stolen_batches,
    ));
    out
}
