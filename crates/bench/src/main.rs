//! `experiments` — regenerate every table and figure of the SUSHI paper.
//!
//! Usage:
//!   cargo run --release -p sushi-bench -- [--quick] [EXPERIMENT...]
//!
//! With no arguments, runs everything at full scale. `--quick` uses the
//! reduced training scale. EXPERIMENT names: table1, table2, table3,
//! table4, fig13, fig14, fig16, fig19, fig20, fig21, delay, reload,
//! states, quantization, sync, process, conv, scaleout, fps.
//!
//! The extra `bench` name (not part of the default run) prints the
//! observability drill-down: hot-cell and per-worker metrics tables for
//! the fig16 cell-accurate run and an end-to-end evaluation. The extra
//! `serve` name (also opt-in) runs the serving-throughput scenarios
//! (serialized / micro-batched / overload) and, when `SERVE_JSON` names
//! a file, writes the `BENCH_serve.json` payload there.

use sushi_core::experiments as exp;

mod serve_bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        exp::Scale::quick()
    } else {
        exp::Scale::full()
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    // Opt-in only: metrics instrumentation is not part of the paper run.
    if selected.contains(&"bench") {
        println!("{}\n", exp::bench_metrics(scale));
    }
    // Opt-in only: the serving-throughput scenarios (BENCH_serve.json).
    if selected.contains(&"serve") {
        println!("{}\n", serve_bench::serve_report(quick));
    }
    if want("table1") {
        println!("{}\n", exp::table1());
    }
    if want("table2") {
        println!("{}\n", exp::table2().1);
    }
    if want("fig13") {
        println!("{}\n", exp::fig13().1);
    }
    if want("table3") {
        println!("{}\n", exp::table3(scale).1);
    }
    if want("fig14") {
        println!("{}\n", exp::fig14());
    }
    if want("fig16") {
        println!("{}\n", exp::fig16().1);
    }
    if want("table4") {
        println!("{}\n", exp::table4());
    }
    if want("fig19") || want("fig20") || want("fig21") {
        println!("{}\n", exp::fig19_20_21().1);
    }
    if want("delay") {
        println!("{}\n", exp::delay_ablation());
    }
    if want("reload") {
        println!("{}\n", exp::reload_ablation(scale));
    }
    if want("states") {
        println!("{}\n", exp::states_ablation(scale));
    }
    if want("quantization") {
        println!("{}\n", exp::quantization_ablation(scale));
    }
    if want("sync") {
        println!("{}\n", exp::sync_baseline_ablation());
    }
    if want("process") {
        println!("{}\n", exp::process_ablation());
    }
    if want("conv") {
        println!("{}\n", exp::conv_demo());
    }
    if want("scaleout") {
        println!("{}\n", exp::scaleout_study());
    }
    if want("fps") {
        println!("{}\n", exp::fps_paper_shape());
    }
}
