//! Simulator microbenches: event throughput of the RSFQ engine on the
//! structures SUSHI is built from.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use std::time::Duration;
use sushi_arch::npe::NpeNetlist;
use sushi_arch::scaleout::npe_mesh;
use sushi_arch::state_controller::ScNetlist;
use sushi_cells::{CellKind, CellLibrary, PortName, Ps};
use sushi_sim::{BatchRunner, Netlist, SimConfig, Stimulus, StimulusBuilder};

/// A deep JTL pipeline: the raw event-propagation path.
fn jtl_pipeline(depth: usize) -> Netlist {
    let mut n = Netlist::new();
    let src = n.add_cell(CellKind::DcSfq, "src");
    n.add_input("in", src, PortName::Din).unwrap();
    let mut prev = (src, PortName::Dout);
    for i in 0..depth {
        let j = n.add_cell(CellKind::Jtl, format!("j{i}"));
        n.connect(prev.0, prev.1, j, PortName::Din).unwrap();
        prev = (j, PortName::Dout);
    }
    n.probe("out", prev.0, prev.1).unwrap();
    n
}

fn bench(c: &mut Criterion) {
    let lib = CellLibrary::nb03();
    let mut g = c.benchmark_group("sim_engine");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);

    let depth = 200usize;
    let pulses: Vec<Ps> = (0..100).map(|i| i as Ps * 40.0).collect();
    let pipeline = jtl_pipeline(depth);
    g.throughput(Throughput::Elements((depth * pulses.len()) as u64));
    g.bench_function("jtl_pipeline_200x100_pulses", |b| {
        b.iter_batched(
            || {
                let mut sim = SimConfig::new().build(&pipeline, &lib);
                sim.inject("in", &pulses).unwrap();
                sim
            },
            |mut sim| {
                sim.run_to_completion().unwrap();
                sim.stats().events_delivered
            },
            BatchSize::SmallInput,
        )
    });

    // One SC, driven hard.
    let mut sc_net = Netlist::new();
    let ports = ScNetlist::build(&mut sc_net, "sc").unwrap();
    sc_net
        .add_input("in", ports.input.cell, ports.input.port)
        .unwrap();
    sc_net
        .add_input("set1", ports.set1.cell, ports.set1.port)
        .unwrap();
    sc_net.probe("out", ports.out.cell, ports.out.port).unwrap();
    let sc_pulses: Vec<Ps> = (0..200).map(|i| 100.0 + i as Ps * 120.0).collect();
    g.throughput(Throughput::Elements(sc_pulses.len() as u64));
    g.bench_function("state_controller_200_pulses", |b| {
        b.iter_batched(
            || {
                let mut sim = SimConfig::new().build(&sc_net, &lib);
                sim.inject("set1", &[0.0]).unwrap();
                sim.inject("in", &sc_pulses).unwrap();
                sim
            },
            |mut sim| {
                sim.run_to_completion().unwrap();
                sim.pulses("out").len()
            },
            BatchSize::SmallInput,
        )
    });

    // A 6-SC NPE ripple counter overflowing repeatedly.
    let mut npe_net = Netlist::new();
    let npe = NpeNetlist::build(&mut npe_net, "npe", 6).unwrap();
    npe_net
        .add_input("in", npe.input.cell, npe.input.port)
        .unwrap();
    for (i, sc) in npe.scs.iter().enumerate() {
        npe_net
            .add_input(format!("set1_{i}"), sc.set1.cell, sc.set1.port)
            .unwrap();
    }
    npe_net.probe("out", npe.out.cell, npe.out.port).unwrap();
    let npe_pulses: Vec<Ps> = (0..256).map(|i| 1000.0 + i as Ps * 500.0).collect();
    g.throughput(Throughput::Elements(npe_pulses.len() as u64));
    g.bench_function("npe_counter_256_pulses", |b| {
        b.iter_batched(
            || {
                let mut sim = SimConfig::new().build(&npe_net, &lib);
                for i in 0..6 {
                    sim.inject(&format!("set1_{i}"), &[0.0]).unwrap();
                }
                sim.inject("in", &npe_pulses).unwrap();
                sim
            },
            |mut sim| {
                sim.run_to_completion().unwrap();
                sim.pulses("out").len()
            },
            BatchSize::SmallInput,
        )
    });
    // A 4-die NPE mesh with dense per-die stimulus: one large netlist
    // whose event loop the partitioned engine shards at the 2 ns board
    // links. Identical netlist and stimulus in both rows, so the time
    // ratio is the partitioned-engine speedup (~1x on a single-CPU
    // host, where the workers just time-slice one core).
    let (mesh_npes, mesh_scs) = (4usize, 16usize);
    let mesh = npe_mesh(mesh_npes, mesh_scs).unwrap();
    let mesh_pulses: Vec<Ps> = (0..512).map(|i| 500.0 + i as Ps * 120.0).collect();
    fn mesh_sim<'a>(
        netlist: &'a Netlist,
        lib: &'a CellLibrary,
        (npes, scs): (usize, usize),
        pulses: &[Ps],
    ) -> sushi_sim::Simulator<'a> {
        let mut sim = SimConfig::new().build(netlist, lib);
        for i in 0..npes {
            for b in 0..scs {
                sim.inject(&format!("npe{i}_set1_{b}"), &[0.0]).unwrap();
            }
            // Stagger each die's local train so link overflows interleave
            // with it inside the merge CBs.
            let local: Vec<Ps> = pulses.iter().map(|t| t + i as Ps * 37.0).collect();
            sim.inject(&format!("in{i}"), &local).unwrap();
        }
        sim
    }
    g.throughput(Throughput::Elements((mesh_npes * mesh_pulses.len()) as u64));
    g.bench_function("partitioned_mesh_sequential", |b| {
        b.iter_batched(
            || mesh_sim(&mesh, &lib, (mesh_npes, mesh_scs), &mesh_pulses),
            |mut sim| {
                sim.run_to_completion().unwrap();
                sim.stats().events_delivered
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("partitioned_mesh_4w", |b| {
        b.iter_batched(
            || mesh_sim(&mesh, &lib, (mesh_npes, mesh_scs), &mesh_pulses),
            |mut sim| {
                sim.run_partitioned(mesh_npes).unwrap();
                sim.stats().events_delivered
            },
            BatchSize::SmallInput,
        )
    });
    // Batch inference over the same pipeline: 32 independent stimulus
    // sets, sequential vs the scoped-thread worker pool. Same total event
    // count, so the time ratio is the batch-layer speedup.
    let batch_items: Vec<Stimulus> = (0..32)
        .map(|k| {
            let mut b = StimulusBuilder::new();
            for i in 0..(60 + k) {
                b = b.pulse("in", i as Ps * 40.0).unwrap();
            }
            b.build()
        })
        .collect();
    let total_pulses: usize = batch_items.iter().map(Stimulus::pulse_count).sum();
    let runner = BatchRunner::new(&pipeline, &lib);
    g.throughput(Throughput::Elements(
        (depth * total_pulses / batch_items.len()) as u64,
    ));
    g.bench_function("jtl_batch32_sequential", |b| {
        b.iter(|| runner.run_sequential(&batch_items).unwrap().len())
    });
    // "host_workers" (not the count) keeps the id distinct from the fixed
    // 4-worker row below on any core count (a 4-core host would otherwise
    // emit two `jtl_batch32_parallel_4w` rows).
    g.bench_function("jtl_batch32_parallel_host_workers", |b| {
        b.iter(|| runner.run(&batch_items).unwrap().len())
    });
    // Fixed worker count, so machines with different core counts still
    // produce a comparable row (on a single-CPU host this only measures
    // the scoped-thread overhead).
    let four = runner.clone().with_workers(4);
    g.bench_function("jtl_batch32_parallel_4w", |b| {
        b.iter(|| four.run(&batch_items).unwrap().len())
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default().final_summary();
}
