//! Fig 13 bench: regenerates the resource-scaling series and measures the
//! resource model across mesh sizes.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;
use sushi_arch::chip::ChipConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("resources_mesh", n), &n, |b, &n| {
            let chip = ChipConfig::mesh(n).build();
            b.iter(|| chip.resources().total_jj())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", sushi_core::experiments::fig13().1);
    benches();
    criterion::Criterion::default().final_summary();
}
