//! Fig 19 bench: regenerates the GSOPS-vs-NPEs series and measures both
//! the analytical model and the behavioural chip's synaptic throughput.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use sushi_arch::chip::ChipConfig;
use sushi_arch::PerfModel;
use sushi_ssnn::binarize::{BinarizedSnn, BinaryLayer};
use sushi_ssnn::stateless::{FireSemantics, SsnnExecutor};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig19");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("perf_model", n), &n, |b, &n| {
            let chip = ChipConfig::mesh(n).build();
            b.iter(|| PerfModel::new(&chip).evaluate().gsops)
        });
    }
    // The behavioural executor's software synop throughput (how fast the
    // *simulator* is, as opposed to the modelled chip).
    let signs: Vec<i8> = (0..256 * 64)
        .map(|i| if (i * 7) % 5 < 2 { -1 } else { 1 })
        .collect();
    let layer = BinaryLayer::from_signs(signs, 256, 64, vec![20; 64]);
    let net = BinarizedSnn::from_layers(vec![layer]);
    let exec = SsnnExecutor::new(&net, FireSemantics::FirstCrossing, 1024, 16);
    let input = vec![true; 256];
    g.throughput(Throughput::Elements(256 * 64));
    g.bench_function("behavioral_executor_step_256x64", |b| {
        b.iter(|| exec.step(&input))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", sushi_core::experiments::fig19_20_21().1);
    benches();
    criterion::Criterion::default().final_summary();
}
