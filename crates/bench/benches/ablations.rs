//! Ablation benches for the design choices DESIGN.md calls out:
//! synapse ordering (bucketing), bit-slice width, and the asynchronous
//! wiring advantage.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;
use sushi_arch::chip::ChipConfig;
use sushi_ssnn::binarize::{BinarizedSnn, BinaryLayer};
use sushi_ssnn::bitslice::SliceSchedule;
use sushi_ssnn::bucketing::{bucketed_order, worst_case_excursion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);

    // Ordering construction cost vs bucket count.
    let signs: Vec<i8> = (0..800)
        .map(|i| if (i * 7) % 5 < 2 { -1 } else { 1 })
        .collect();
    for buckets in [1usize, 4, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("bucketed_order_800", buckets),
            &buckets,
            |b, &k| b.iter(|| bucketed_order(&signs, k)),
        );
    }
    g.bench_function("worst_case_excursion_800", |b| {
        let order = bucketed_order(&signs, 16);
        b.iter(|| worst_case_excursion(&signs, &order, 40).required_states(40))
    });

    // Slice-width sweep: schedule length and step cost.
    let l1: Vec<i8> = (0..784 * 100)
        .map(|i| if (i * 13) % 3 == 0 { -1 } else { 1 })
        .collect();
    let net = BinarizedSnn::from_layers(vec![BinaryLayer::from_signs(l1, 784, 100, vec![20; 100])]);
    let input: Vec<bool> = (0..784).map(|i| i % 5 != 0).collect();
    for n in [8usize, 16, 32] {
        let sched = SliceSchedule::for_network(&net, n);
        g.bench_with_input(BenchmarkId::new("sliced_step_784x100", n), &n, |b, _| {
            b.iter(|| sched.sliced_step(&net, &input))
        });
    }
    g.bench_function("unsliced_step_784x100", |b| b.iter(|| net.step(&input)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    // The async-vs-synchronous wiring claim: SUSHI's wiring share vs the
    // paper's "about 80% of the total design" for synchronous RSFQ.
    println!("## Asynchronous design wiring ablation (Section 3A)");
    for n in [1usize, 4, 16] {
        let r = ChipConfig::mesh(n).build().resources();
        println!(
            "mesh {n}x{n}: wiring {:.1}% of {} JJs (synchronous designs: ~80%)",
            r.wiring_fraction() * 100.0,
            r.total_jj()
        );
    }
    println!();
    println!(
        "{}",
        sushi_core::experiments::states_ablation(sushi_core::experiments::Scale::quick())
    );
    println!(
        "{}",
        sushi_core::experiments::reload_ablation(sushi_core::experiments::Scale::quick())
    );
    println!("{}", sushi_core::experiments::sync_baseline_ablation());
    println!("{}", sushi_core::experiments::process_ablation());
    println!("{}", sushi_core::experiments::scaleout_study());
    benches();
    criterion::Criterion::default().final_summary();
}
