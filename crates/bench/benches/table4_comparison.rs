//! Table 4 bench: regenerates the cross-chip comparison and measures the
//! evaluation layer.

use criterion::{criterion_group, Criterion};
use std::time::Duration;
use sushi_core::baselines::Baseline;
use sushi_core::eval::{efficiency_ratio, sushi_row, table4_rows};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("sushi_row", |b| b.iter(sushi_row));
    g.bench_function("table4_rows", |b| b.iter(table4_rows));
    g.bench_function("efficiency_ratios", |b| {
        b.iter(|| {
            (
                efficiency_ratio(&Baseline::truenorth()),
                efficiency_ratio(&Baseline::tianjic()),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", sushi_core::experiments::table4());
    println!("{}", sushi_core::experiments::fps_paper_shape());
    benches();
    criterion::Criterion::default().final_summary();
}
