//! Training-pipeline benches: BPTT forward, backward, and a full training
//! epoch on the paper's 784-800-10 network (T = 5, batch 32, XNOR-Net
//! mode), feeding `BENCH_train.json` via `scripts/bench.sh`.
//!
//! The forward/backward rows run the allocation-free `TrainScratch` hot
//! path exactly as `Trainer::fit` drives it: one scratch reused across
//! iterations, so the steady state measures kernels — not the allocator.

use criterion::{criterion_group, Criterion, Throughput};
use std::time::Duration;
use sushi_snn::data::synth_digits;
use sushi_snn::train::{TrainConfig, Trainer};
use sushi_snn::{Matrix, PoissonEncoder, SnnMlp, TrainScratch};

const BATCH: usize = 32;
const EPOCH_SAMPLES: usize = 256;

fn paper_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::paper();
    cfg.epochs = 1;
    cfg
}

fn bench(c: &mut Criterion) {
    let cfg = paper_cfg();
    let mlp = SnnMlp::new(&cfg.layer_sizes(), cfg.seed)
        .with_binary_weights(cfg.binary_weights)
        .with_stateless(cfg.stateless);
    let data = synth_digits(BATCH, 11);
    let enc = PoissonEncoder::new(cfg.seed);
    let samples: Vec<&[f32]> = data.images.iter().map(Vec::as_slice).collect();
    let ids: Vec<u64> = (0..BATCH as u64).collect();
    let frames = enc.encode_batch(&samples, cfg.time_steps, &ids);
    let mut targets = Matrix::zeros(BATCH, cfg.classes);
    for (r, &label) in data.labels.iter().enumerate() {
        targets[(r, label as usize)] = 1.0;
    }
    let mut ws = TrainScratch::new();

    let mut g = c.benchmark_group("train_pipeline");
    g.measurement_time(Duration::from_secs(5)).sample_size(10);
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("train_forward_784_800_10", |b| {
        b.iter(|| {
            mlp.forward_record_with(&frames, &mut ws);
            ws.record().rates.sum()
        })
    });
    mlp.forward_record_with(&frames, &mut ws);
    g.bench_function("train_backward_784_800_10", |b| {
        b.iter(|| mlp.backward_with(&frames, &targets, &mut ws))
    });
    g.throughput(Throughput::Elements(EPOCH_SAMPLES as u64));
    let epoch_data = synth_digits(EPOCH_SAMPLES, 1);
    g.bench_function("train_epoch_784_800_10", |b| {
        b.iter(|| Trainer::new(cfg.clone()).fit(&epoch_data).mlp.weights()[0].as_slice()[0])
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default().final_summary();
}
