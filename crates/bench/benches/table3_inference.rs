//! Table 3 bench: regenerates the accuracy/consistency comparison (quick
//! scale), measures the chip pipeline's per-sample inference cost, and
//! races the bit-packed XNOR/popcount SSNN engine against the scalar
//! oracle on the paper's 784–800–10 evaluation shape (`BENCH_ssnn.json`
//! headline, assembled by `scripts/bench.sh`).

use criterion::{criterion_group, Criterion, Throughput};
use std::time::Duration;
use sushi_core::experiments::{table3, Scale};
use sushi_core::SushiChip;
use sushi_sim::EvalOptions;
use sushi_snn::data::synth_digits;
use sushi_snn::train::{TrainConfig, Trainer};
use sushi_ssnn::backend::{InferenceBackend, ScalarBackend};
use sushi_ssnn::binarize::{BinarizedSnn, BinaryLayer};
use sushi_ssnn::compiler::{Compiler, CompilerConfig};
use sushi_ssnn::packed::PackedSnn;

/// Images per benchmark iteration of the packed-vs-scalar groups.
const SSNN_IMAGES: usize = 16;
/// Images per iteration of the bitplane group: one full 64-lane batch.
const SSNN_BATCH: usize = 64;
/// Poisson time steps per image.
const SSNN_FRAMES: usize = 10;

/// The paper's 784–800–10 MNIST shape with deterministic pseudorandom
/// signs and thresholds — throughput depends only on the shape and the
/// input activity, not on trained weights.
fn paper_shape_net(seed: u64) -> BinarizedSnn {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    let mut layer = |ins: usize, outs: usize| {
        let signs: Vec<i8> = (0..ins * outs)
            .map(|_| match next() % 8 {
                0 => 0, // open cross-point switch
                1..=3 => -1,
                _ => 1,
            })
            .collect();
        let thresholds: Vec<i64> = (0..outs).map(|_| 4 + (next() % 20) as i64).collect();
        BinaryLayer::from_signs(signs, ins, outs, thresholds)
    };
    BinarizedSnn::from_layers(vec![layer(784, 800), layer(800, 10)])
}

/// `count` images of `SSNN_FRAMES` deterministic ~30%-dense spike frames.
fn spike_images(seed: u64, count: usize) -> Vec<Vec<Vec<bool>>> {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    (0..count)
        .map(|_| {
            (0..SSNN_FRAMES)
                .map(|_| (0..784).map(|_| next() % 10 < 3).collect())
                .collect()
        })
        .collect()
}

fn bench_ssnn_packed(c: &mut Criterion) {
    let net = paper_shape_net(0xD1CE);
    let packed = PackedSnn::from_network(&net);
    let scalar = ScalarBackend(&net);
    let images = spike_images(0xACED, SSNN_IMAGES);
    // Sanity: the packed engine is a bitwise drop-in before we time it.
    for img in &images {
        assert_eq!(packed.predict(img), scalar.predict(img));
    }

    let mut g = c.benchmark_group("ssnn_packed");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.throughput(Throughput::Elements(SSNN_IMAGES as u64));
    g.bench_function("scalar_predict_784_800_10", |b| {
        b.iter(|| -> usize { images.iter().map(|img| scalar.predict(img)).sum() })
    });
    g.bench_function("packed_predict_784_800_10", |b| {
        b.iter(|| -> usize { images.iter().map(|img| packed.predict(img)).sum() })
    });
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    g.bench_function(format!("packed_predict_batch_{workers}_workers"), |b| {
        b.iter(|| packed.predict_batch(&images, workers))
    });
    g.finish();
}

fn bench_ssnn_bitplane(c: &mut Criterion) {
    let net = paper_shape_net(0xD1CE);
    let packed = PackedSnn::from_network(&net);
    let images = spike_images(0xB17E, SSNN_BATCH);
    // Sanity: bitplane results are bitwise identical before we time them.
    assert_eq!(
        packed.predict_batch_bitplane(&images, 1),
        packed.predict_batch(&images, 1)
    );

    // Single worker on both sides of the headline ratio, so
    // bitplane_over_packed_speedup isolates the layout + kernel win from
    // thread-pool scaling.
    let mut g = c.benchmark_group("ssnn_bitplane");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.throughput(Throughput::Elements(SSNN_BATCH as u64));
    g.bench_function("bitplane_predict_batch64_784_800_10", |b| {
        b.iter(|| packed.predict_batch_bitplane(&images, 1))
    });
    g.bench_function("packed_predict_batch64_784_800_10", |b| {
        b.iter(|| packed.predict_batch(&images, 1))
    });
    g.throughput(Throughput::Elements(8));
    g.bench_function("bitplane_predict_batch8_784_800_10", |b| {
        b.iter(|| packed.predict_batch_bitplane(&images[..8], 1))
    });
    g.finish();
}

fn bench(c: &mut Criterion) {
    let data = synth_digits(300, 1);
    let mut cfg = TrainConfig::tiny_binary();
    cfg.epochs = 4;
    let model = Trainer::new(cfg).fit(&data);
    let program = Compiler::new(CompilerConfig::paper()).compile(&model);
    let chip = SushiChip::paper();
    let img = data.images[0].clone();

    let mut g = c.benchmark_group("table3");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("chip_inference_one_sample", |b| {
        b.iter(|| chip.run_sample(&program, &img, 0).prediction)
    });
    // Whole-dataset evaluation, sequential vs the parallel batch layer.
    let slice = synth_digits(60, 2);
    g.bench_function("evaluate_60_samples_1_worker", |b| {
        b.iter(|| {
            chip.evaluate(&program, &slice, &EvalOptions::new().workers(1))
                .accuracy
        })
    });
    // "host_workers" (not the count) keeps the id distinct from the fixed
    // 1-worker row above — a 1-CPU host used to produce the colliding pair
    // `evaluate_60_samples_1_worker` / `..._1_workers` in BENCH_ssnn.json.
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    g.bench_function("evaluate_60_samples_host_workers", |b| {
        b.iter(|| {
            chip.evaluate(&program, &slice, &EvalOptions::new().workers(workers))
                .accuracy
        })
    });
    g.bench_function("float_reference_one_sample", |b| {
        let enc = model.encoder();
        b.iter(|| {
            let frames = enc.encode(&img, model.config.time_steps, 0);
            model.mlp.predict(&frames)[0]
        })
    });
    g.bench_function("compile_program", |b| {
        b.iter(|| {
            Compiler::new(CompilerConfig::paper())
                .compile(&model)
                .schedule
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench, bench_ssnn_packed, bench_ssnn_bitplane);

fn main() {
    println!("{}", table3(Scale::quick()).1);
    benches();
    criterion::Criterion::default().final_summary();
}
