//! Table 3 bench: regenerates the accuracy/consistency comparison (quick
//! scale) and measures the chip pipeline's per-sample inference cost.

use criterion::{criterion_group, Criterion};
use std::time::Duration;
use sushi_core::experiments::{table3, Scale};
use sushi_core::SushiChip;
use sushi_sim::EvalOptions;
use sushi_snn::data::synth_digits;
use sushi_snn::train::{TrainConfig, Trainer};
use sushi_ssnn::compiler::{Compiler, CompilerConfig};

fn bench(c: &mut Criterion) {
    let data = synth_digits(300, 1);
    let mut cfg = TrainConfig::tiny_binary();
    cfg.epochs = 4;
    let model = Trainer::new(cfg).fit(&data);
    let program = Compiler::new(CompilerConfig::paper()).compile(&model);
    let chip = SushiChip::paper();
    let img = data.images[0].clone();

    let mut g = c.benchmark_group("table3");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("chip_inference_one_sample", |b| {
        b.iter(|| chip.run_sample(&program, &img, 0).prediction)
    });
    // Whole-dataset evaluation, sequential vs the parallel batch layer.
    let slice = synth_digits(60, 2);
    g.bench_function("evaluate_60_samples_1_worker", |b| {
        b.iter(|| {
            chip.evaluate(&program, &slice, &EvalOptions::new().workers(1))
                .accuracy
        })
    });
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    g.bench_function(format!("evaluate_60_samples_{workers}_workers"), |b| {
        b.iter(|| {
            chip.evaluate(&program, &slice, &EvalOptions::new().workers(workers))
                .accuracy
        })
    });
    g.bench_function("float_reference_one_sample", |b| {
        let enc = model.encoder();
        b.iter(|| {
            let frames = enc.encode(&img, model.config.time_steps, 0);
            model.mlp.predict(&frames)[0]
        })
    });
    g.bench_function("compile_program", |b| {
        b.iter(|| {
            Compiler::new(CompilerConfig::paper())
                .compile(&model)
                .schedule
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", table3(Scale::quick()).1);
    benches();
    criterion::Criterion::default().final_summary();
}
