//! Figs 20/21 bench: regenerates the power and efficiency series and
//! measures the power model.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;
use sushi_arch::chip::ChipConfig;
use sushi_arch::PerfModel;
use sushi_cells::{CellLibrary, PowerModel};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_21");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("power_and_efficiency", n), &n, |b, &n| {
            let chip = ChipConfig::mesh(n).build();
            b.iter(|| {
                let m = PerfModel::new(&chip);
                (m.power_mw(), m.gsops_per_w())
            })
        });
    }
    let lib = CellLibrary::nb03();
    g.bench_function("cell_power_model", |b| {
        let m = PowerModel::new(&lib);
        b.iter(|| m.estimate(99_982, 1.355e12, 50.0).total_mw())
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", sushi_core::experiments::delay_ablation());
    println!("{}", sushi_core::experiments::fig19_20_21().1);
    benches();
    criterion::Criterion::default().final_summary();
}
