//! Table 2 bench: regenerates the 4x4-mesh resource table and measures
//! the resource-model evaluation itself.

use criterion::{criterion_group, BatchSize, Criterion};
use std::time::Duration;
use sushi_arch::chip::{ChipConfig, WeightConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("resources_4x4_full_mesh", |b| {
        b.iter_batched(
            || {
                ChipConfig::mesh(4)
                    .with_weights(WeightConfig::full())
                    .build()
            },
            |chip| chip.resources().total_jj(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("netlist_generation_2x2", |b| {
        b.iter_batched(
            || ChipConfig::mesh(2).with_sc_per_npe(4).build(),
            |chip| {
                chip.build_netlist()
                    .expect("netlist builds")
                    .netlist
                    .cell_count()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", sushi_core::experiments::table2().1);
    benches();
    criterion::Criterion::default().final_summary();
}
