//! End-to-end tests of the serving layer: determinism against offline
//! inference, both micro-batch triggers, backpressure, shutdown drain,
//! the socket front end and the load generator.

use std::time::Duration;

use sushi_serve::loadgen;
use sushi_serve::{ServeConfig, ServeError, Server};
use sushi_ssnn::{Backend, PackedLayer, PackedSnn};

/// A deterministic 32-16-10 packed network (xorshift weights, the same
/// recipe as the benchmark fixtures, scaled down for test speed).
fn test_net(seed: u64) -> PackedSnn {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    let mut layer = |ins: usize, outs: usize| {
        let signs: Vec<i8> = (0..ins * outs)
            .map(|_| match next() % 8 {
                0 => 0,
                1..=3 => -1,
                _ => 1,
            })
            .collect();
        let thresholds: Vec<i64> = (0..outs).map(|_| (next() % 9) as i64 - 4).collect();
        PackedLayer::from_parts(&signs, ins, outs, &thresholds)
    };
    PackedSnn::from_layers(vec![layer(32, 16), layer(16, 10)])
}

/// Deterministic ~30%-dense spike images, `frames` frames each.
fn spike_images(seed: u64, count: usize, width: usize, frames: usize) -> Vec<Vec<Vec<bool>>> {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    (0..count)
        .map(|_| {
            (0..frames)
                .map(|_| (0..width).map(|_| next() % 10 < 3).collect())
                .collect()
        })
        .collect()
}

#[test]
fn served_predictions_match_offline_batch_bitwise() {
    let snn = test_net(0xBEEF);
    let images = spike_images(0xACED, 64, snn.input_width(), 4);
    let offline = snn.predict_batch(&images, 1);

    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(8)
            .max_delay(Duration::from_millis(1))
            .workers(1),
    );
    let handle = server.handle();
    // Hammer from several client threads so requests actually coalesce.
    let served: Vec<usize> = std::thread::scope(|scope| {
        let chunks: Vec<_> = images
            .chunks(16)
            .map(|chunk| {
                let h = handle.clone();
                scope.spawn(move || -> Vec<usize> {
                    chunk
                        .iter()
                        .map(|img| h.predict(img.clone()).expect("serve ok").class)
                        .collect()
                })
            })
            .collect();
        chunks
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });
    assert_eq!(served, offline);
    let stats = server.stats();
    assert_eq!(stats.served, images.len() as u64);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn bitplane_served_classes_match_offline_batch_bitwise() {
    let snn = test_net(0xB17);
    let images = spike_images(0xB17E, 48, snn.input_width(), 4);
    let offline = snn.predict_batch(&images, 1);
    // min_batch 1 forces every micro-batch — even a deadline-triggered
    // single request — onto the bitplane path; test_net's negative
    // thresholds make inactive-lane masking observable if it broke.
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(8)
            .max_delay(Duration::from_millis(1))
            .workers(1)
            .backend(Backend::Bitplane)
            .bitplane_min_batch(1),
    );
    let handle = server.handle();
    let served: Vec<usize> = std::thread::scope(|scope| {
        let chunks: Vec<_> = images
            .chunks(12)
            .map(|chunk| {
                let h = handle.clone();
                scope.spawn(move || -> Vec<usize> {
                    chunk
                        .iter()
                        .map(|img| h.predict(img.clone()).expect("serve ok").class)
                        .collect()
                })
            })
            .collect();
        chunks
            .into_iter()
            .flat_map(|j| j.join().expect("client thread"))
            .collect()
    });
    assert_eq!(served, offline);
    let stats = server.stats();
    assert_eq!(stats.served, images.len() as u64);
    assert!(stats.batches > 0);
    assert_eq!(
        stats.bitplane_batches, stats.batches,
        "every micro-batch took the bitplane path"
    );
}

#[test]
fn packed_backend_never_takes_the_bitplane_path() {
    let snn = test_net(0x9ACD);
    let images = spike_images(0x9A5, 8, snn.input_width(), 2);
    let offline = snn.predict_batch(&images, 1);
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(4)
            .max_delay(Duration::from_millis(1))
            .workers(1)
            .backend(Backend::Packed),
    );
    let handle = server.handle();
    let served: Vec<usize> = images
        .iter()
        .map(|img| handle.predict(img.clone()).expect("serve ok").class)
        .collect();
    assert_eq!(served, offline);
    assert_eq!(server.stats().bitplane_batches, 0);
}

#[test]
fn size_trigger_coalesces_full_batches() {
    let snn = test_net(0x51CE);
    let images = spike_images(0x0DD, 4, snn.input_width(), 2);
    // A huge deadline: only the size trigger can dispatch. One shard so
    // all four requests coalesce on the same queue.
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(4)
            .max_delay(Duration::from_secs(60))
            .shards(1)
            .executors(1),
    );
    let handle = server.handle();
    let batch_sizes: Vec<usize> = std::thread::scope(|scope| {
        let clients: Vec<_> = images
            .iter()
            .map(|img| {
                let h = handle.clone();
                scope.spawn(move || h.predict(img.clone()).expect("serve ok").batch_size)
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect()
    });
    // All four clients were served by the one size-triggered batch.
    assert_eq!(batch_sizes, vec![4, 4, 4, 4]);
    assert_eq!(server.stats().batches, 1);
}

#[test]
fn deadline_trigger_dispatches_partial_batch() {
    let snn = test_net(0xDEAD);
    let image = spike_images(0x123, 1, snn.input_width(), 2).remove(0);
    // Size trigger unreachable with one client; only the deadline fires.
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(1024)
            .max_delay(Duration::from_millis(5))
            .workers(1),
    );
    let handle = server.handle();
    let start = std::time::Instant::now();
    let p = handle.predict(image).expect("serve ok");
    assert_eq!(p.batch_size, 1);
    // Generous bound: the request must not wait for the size trigger.
    assert!(start.elapsed() < Duration::from_secs(30));
}

#[test]
fn full_queue_sheds_with_structured_error() {
    let snn = test_net(0xFADE);
    let images = spike_images(0x77, 3, snn.input_width(), 2);
    // Size trigger (5) and deadline (60 s) both out of reach: the two
    // admitted requests sit in the queue until shutdown drains them, so
    // the third request deterministically finds the queue full.
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(5)
            .max_delay(Duration::from_secs(60))
            .queue_capacity(2)
            .workers(1),
    );
    let handle = server.handle();
    let outcomes: Vec<Result<_, ServeError>> = std::thread::scope(|scope| {
        let h0 = handle.clone();
        let img0 = images[0].clone();
        let c0 = scope.spawn(move || h0.predict(img0));
        let h1 = handle.clone();
        let img1 = images[1].clone();
        let c1 = scope.spawn(move || h1.predict(img1));
        // Wait until both requests are actually queued.
        let wait_start = std::time::Instant::now();
        while handle.queue_depth() < 2 {
            assert!(
                wait_start.elapsed() < Duration::from_secs(10),
                "queue never filled"
            );
            std::thread::yield_now();
        }
        let shed = handle.predict(images[2].clone());
        assert_eq!(
            shed,
            Err(ServeError::Overloaded {
                depth: 2,
                capacity: 2
            })
        );
        // Shutdown drains the two admitted requests.
        drop(server);
        vec![c0.join().expect("client"), c1.join().expect("client")]
    });
    assert!(
        outcomes.iter().all(Result::is_ok),
        "admitted requests are still served"
    );
}

#[test]
fn wrong_frame_width_is_rejected_before_queueing() {
    let snn = test_net(0xF00D);
    let server = Server::start(snn, ServeConfig::new().workers(1));
    let handle = server.handle();
    let err = handle.predict(vec![vec![true; 7]]).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)));
    assert_eq!(server.stats().admitted, 0);
}

#[test]
fn shutdown_drains_admitted_requests_and_stops_admission() {
    let snn = test_net(0xD00F);
    let images = spike_images(0x42, 6, snn.input_width(), 2);
    let offline = snn.predict_batch(&images, 1);
    let mut server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(3)
            .max_delay(Duration::from_millis(1))
            .workers(1),
    );
    let handle = server.handle();
    let served: Vec<usize> = std::thread::scope(|scope| {
        let clients: Vec<_> = images
            .iter()
            .map(|img| {
                let h = handle.clone();
                scope.spawn(move || h.predict(img.clone()).expect("pre-shutdown ok").class)
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect()
    });
    assert_eq!(served, offline);
    server.shutdown();
    let err = handle.predict(images[0].clone()).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    server.shutdown(); // idempotent
}

#[cfg(unix)]
#[test]
fn socket_round_trip_matches_in_process_serving() {
    use sushi_serve::socket::{SocketClient, SocketServer};

    let snn = test_net(0xCAFE);
    let images = spike_images(0x99, 10, snn.input_width(), 3);
    let offline = snn.predict_batch(&images, 1);
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(4)
            .max_delay(Duration::from_millis(1))
            .workers(1),
    );
    let path = std::env::temp_dir().join(format!("sushi-serve-test-{}.sock", std::process::id()));
    let socket = SocketServer::bind(&path, server.handle()).expect("bind socket");
    let mut client = SocketClient::connect(socket.path()).expect("connect");
    for (img, &want) in images.iter().zip(&offline) {
        let p = client.predict(img).expect("io ok").expect("served");
        assert_eq!(p.class, want);
        assert!(p.batch_size >= 1);
    }
    drop(socket);
    assert!(!path.exists(), "socket file removed on drop");
}

#[test]
fn loadgen_closed_loop_smoke() {
    let snn = test_net(0xABCD);
    let images = spike_images(0x31337, 8, snn.input_width(), 2);
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(8)
            .max_delay(Duration::from_micros(200))
            .workers(1),
    );
    let report = loadgen::closed_loop(&server.handle(), &images, 2, Duration::from_millis(100));
    assert_eq!(report.mode, "closed");
    assert!(report.ok > 0, "closed loop served something");
    assert_eq!(report.ok + report.rejected, report.sent);
    assert!(report.images_per_s > 0.0);
    assert!(report.latency.p99_us >= report.latency.p50_us);
    // The JSON rendering is what bench.sh assembles into BENCH_serve.json.
    let json = report.to_json().to_string();
    assert!(json.contains("\"p99_us\""));
    assert!(json.contains("\"images_per_s\""));
}

#[test]
fn loadgen_open_loop_measures_from_scheduled_arrival() {
    let snn = test_net(0x7777);
    let images = spike_images(0x2222, 4, snn.input_width(), 2);
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(8)
            .max_delay(Duration::from_micros(200))
            .workers(1),
    );
    let report = loadgen::open_loop(
        &server.handle(),
        &images,
        500.0,
        Duration::from_millis(100),
        2,
    );
    assert_eq!(report.mode, "open");
    assert_eq!(report.sent, 50, "rate x duration arrivals were scheduled");
    assert_eq!(report.ok + report.rejected, report.sent);
}

#[test]
fn predict_packed_round_trips_payload_and_matches_predict() {
    use sushi_serve::PackedRequest;

    let snn = test_net(0x9ACC);
    let images = spike_images(0x5151, 6, snn.input_width(), 3);
    let offline = snn.predict_batch(&images, 1);
    let width = snn.input_width();
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(2)
            .max_delay(Duration::from_micros(200))
            .shards(2)
            .executors(1),
    );
    let handle = server.handle();
    for (img, &want) in images.iter().zip(&offline) {
        let mut req = PackedRequest::from_bool_frames(width, img);
        let before = req.clone();
        let p = handle.predict_packed(&mut req).expect("serve ok");
        assert_eq!(p.class, want);
        assert_eq!(req, before, "payload swapped back intact");
    }

    // Width mismatch (including the empty request, which must still
    // carry the network width) is rejected before queueing.
    let mut wrong = PackedRequest::new();
    wrong.reset(width + 1);
    assert!(matches!(
        handle.predict_packed(&mut wrong).unwrap_err(),
        ServeError::BadRequest(_)
    ));
    // An empty request of the right width is served (all-zero counts).
    let mut empty = PackedRequest::new();
    empty.reset(width);
    assert_eq!(
        handle.predict_packed(&mut empty).expect("serve ok").class,
        0
    );
}

#[test]
fn executors_steal_ripe_batches_from_foreign_shards() {
    let snn = test_net(0x57EA);
    let images = spike_images(0x57EB, 8, snn.input_width(), 2);
    let offline = snn.predict_batch(&images, 1);
    // One executor whose home is shard 0; every request is pinned to
    // shard 3, so each dispatched batch is necessarily stolen.
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(4)
            .max_delay(Duration::from_micros(100))
            .shards(4)
            .executors(1),
    );
    let handle = server.handle().with_affinity(3);
    let served: Vec<usize> = images
        .iter()
        .map(|img| handle.predict(img.clone()).expect("serve ok").class)
        .collect();
    assert_eq!(served, offline);
    let stats = server.stats();
    assert_eq!(stats.served, images.len() as u64);
    assert_eq!(
        stats.stolen_batches, stats.batches,
        "every batch came from a non-home shard"
    );
}

mod shard_executor_grid {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tentpole invariant: served classes are bitwise identical
        /// to offline `predict_batch` for every shard x executor
        /// combination, under concurrent clients on both the bool and
        /// the packed submission path.
        #[test]
        fn served_classes_bitwise_equal_offline_for_all_topologies(
            seed in 1u64..u64::MAX,
            count in 1usize..6,
            frames in 1usize..3,
        ) {
            let width = test_net(seed).input_width();
            let images = spike_images(seed ^ 0x6B1D, count, width, frames);
            let offline = test_net(seed).predict_batch(&images, 1);
            for &shards in &[1usize, 2, 4] {
                for &executors in &[1usize, 2, 7] {
                    let server = Server::start(
                        test_net(seed),
                        ServeConfig::new()
                            .max_batch(4)
                            .max_delay(Duration::from_micros(100))
                            .shards(shards)
                            .executors(executors),
                    );
                    let handle = server.handle();
                    let served: Vec<usize> = std::thread::scope(|scope| {
                        let clients: Vec<_> = images
                            .iter()
                            .enumerate()
                            .map(|(i, img)| {
                                let h = handle.clone();
                                scope.spawn(move || {
                                    if i % 2 == 0 {
                                        h.predict(img.clone()).expect("serve ok").class
                                    } else {
                                        let mut req = sushi_serve::PackedRequest::from_bool_frames(
                                            width, img,
                                        );
                                        h.predict_packed(&mut req).expect("serve ok").class
                                    }
                                })
                            })
                            .collect();
                        clients
                            .into_iter()
                            .map(|c| c.join().expect("client thread"))
                            .collect()
                    });
                    prop_assert_eq!(
                        &served,
                        &offline,
                        "shards {} executors {}",
                        shards,
                        executors
                    );
                }
            }
        }
    }
}
