//! Pins the tentpole's allocation-free response path: after warmup, the
//! in-process packed serving path performs zero heap allocations per
//! request — slots come from the pool, payloads move by `mem::swap`,
//! executors reuse their scratch, and queues keep their capacity.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator observes only this scenario's process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sushi_serve::{PackedRequest, ServeConfig, Server};
use sushi_ssnn::{PackedLayer, PackedSnn};

/// Counts every allocation and reallocation process-wide; frees are
/// uncounted (a steady state may drop nothing, but must also take
/// nothing).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn test_net(seed: u64) -> PackedSnn {
    let mut st = seed | 1;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    let mut layer = |ins: usize, outs: usize| {
        let signs: Vec<i8> = (0..ins * outs)
            .map(|_| match next() % 8 {
                0 => 0,
                1..=3 => -1,
                _ => 1,
            })
            .collect();
        let thresholds: Vec<i64> = (0..outs).map(|_| (next() % 9) as i64 - 4).collect();
        PackedLayer::from_parts(&signs, ins, outs, &thresholds)
    };
    PackedSnn::from_layers(vec![layer(32, 16), layer(16, 10)])
}

#[test]
fn packed_serving_allocates_nothing_per_request_after_warmup() {
    let snn = test_net(0xA110C);
    let width = snn.input_width();
    // max_batch 1: every request dispatches on arrival via the size
    // trigger, so the steady state is timing-independent.
    let server = Server::start(
        snn,
        ServeConfig::new()
            .max_batch(1)
            .max_delay(Duration::from_millis(5))
            .shards(1)
            .executors(1),
    );
    let handle = server.handle();
    let frames: Vec<Vec<bool>> = (0..3)
        .map(|t| (0..width).map(|i| (i + t) % 3 == 0).collect())
        .collect();
    let mut request = PackedRequest::from_bool_frames(width, &frames);

    // Warmup: grow the slot pool, executor staging buffers and scratch
    // to their steady-state footprint.
    for _ in 0..64 {
        handle.predict_packed(&mut request).expect("warmup serve");
    }

    // A path that allocates per request can never produce a clean
    // window; a few windows tolerate one-off stragglers from runtime
    // initialization that the warmup did not flush.
    let mut deltas = Vec::new();
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..256 {
            handle.predict_packed(&mut request).expect("steady serve");
        }
        deltas.push(ALLOCATIONS.load(Ordering::SeqCst) - before);
        if deltas.last() == Some(&0) {
            break;
        }
    }
    assert_eq!(
        deltas.last(),
        Some(&0),
        "steady-state packed serving must not allocate (allocations per \
         256-request window: {deltas:?})"
    );
    drop(server);
}
