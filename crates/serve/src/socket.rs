//! Unix-domain-socket front end: a tiny fixed-layout binary protocol so
//! out-of-process clients can reach a running [`Server`](crate::Server).
//!
//! ## Wire protocol (all integers little-endian)
//!
//! Request:
//!
//! ```text
//! [u8 op = 1][u16 frame_count][u32 bits_per_frame]
//! [frame_count x ceil(bits_per_frame / 8) bytes, frames bit-packed LSB-first]
//! ```
//!
//! Response:
//!
//! ```text
//! [u8 status][u32 class][u32 batch_size]
//! ```
//!
//! with status `0` = ok, `1` = overloaded (shed), `2` = bad request,
//! `3` = shutting down. `class` and `batch_size` are zero unless
//! status is `0`. A connection carries any number of request/response
//! pairs in sequence.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{Prediction, ServeError, ServeHandle};

const OP_PREDICT: u8 = 1;

const STATUS_OK: u8 = 0;
const STATUS_OVERLOADED: u8 = 1;
const STATUS_BAD_REQUEST: u8 = 2;
const STATUS_SHUTTING_DOWN: u8 = 3;

fn pack_bits(frame: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; frame.len().div_ceil(8)];
    for (i, &b) in frame.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

fn unpack_bits(bytes: &[u8], bits: usize) -> Vec<bool> {
    (0..bits)
        .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect()
}

/// Serves one connection until the peer hangs up or sends garbage.
fn serve_connection(mut conn: UnixStream, handle: &ServeHandle) -> std::io::Result<()> {
    loop {
        let mut header = [0u8; 7];
        match conn.read_exact(&mut header) {
            Ok(()) => {}
            // Clean end-of-stream between requests.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let op = header[0];
        let frame_count = u16::from_le_bytes([header[1], header[2]]) as usize;
        let bits = u32::from_le_bytes([header[3], header[4], header[5], header[6]]) as usize;
        if op != OP_PREDICT {
            conn.write_all(&encode_response(&Err(
                ServeError::BadRequest(String::new()),
            )))?;
            return Ok(());
        }
        let bytes_per_frame = bits.div_ceil(8);
        let mut frames = Vec::with_capacity(frame_count);
        for _ in 0..frame_count {
            let mut buf = vec![0u8; bytes_per_frame];
            conn.read_exact(&mut buf)?;
            frames.push(unpack_bits(&buf, bits));
        }
        let result = handle.predict(frames);
        conn.write_all(&encode_response(&result))?;
    }
}

fn encode_response(result: &Result<Prediction, ServeError>) -> [u8; 9] {
    let (status, class, batch) = match result {
        Ok(p) => (STATUS_OK, p.class as u32, p.batch_size as u32),
        Err(ServeError::Overloaded { .. }) => (STATUS_OVERLOADED, 0, 0),
        Err(ServeError::BadRequest(_)) => (STATUS_BAD_REQUEST, 0, 0),
        Err(ServeError::ShuttingDown) => (STATUS_SHUTTING_DOWN, 0, 0),
    };
    let mut out = [0u8; 9];
    out[0] = status;
    out[1..5].copy_from_slice(&class.to_le_bytes());
    out[5..9].copy_from_slice(&batch.to_le_bytes());
    out
}

/// A socket front end bound to a filesystem path, fanning connections
/// into a shared [`ServeHandle`].
///
/// Dropping the server stops accepting, joins the accept thread, and
/// removes the socket file. In-flight connections finish serving their
/// current request and then find the listener gone on reconnect.
pub struct SocketServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `path` (removing any stale socket file first) and starts the
    /// accept loop; each connection gets its own serving thread.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn bind(path: impl AsRef<Path>, handle: ServeHandle) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("sushi-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { break };
                    let conn_handle = handle.clone();
                    // Connection threads are detached; they exit when the
                    // peer disconnects or the inner server shuts down.
                    std::thread::spawn(move || {
                        let _ = serve_connection(conn, &conn_handle);
                    });
                }
            })
            .expect("spawn accept thread");
        Ok(Self {
            path,
            stop,
            accept: Some(accept),
        })
    }

    /// The filesystem path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection so it observes
        // the stop flag even if no client ever arrives again.
        let _ = UnixStream::connect(&self.path);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A blocking client for the socket protocol.
pub struct SocketClient {
    conn: UnixStream,
}

impl SocketClient {
    /// Connects to a [`SocketServer`] at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from connecting.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            conn: UnixStream::connect(path)?,
        })
    }

    /// Sends one image and blocks for its prediction; server-side
    /// rejections come back as the corresponding [`ServeError`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection breaks or the server
    /// answers with an unknown status byte.
    ///
    /// # Panics
    ///
    /// Panics if `frames` have inconsistent widths or overflow the
    /// protocol's `u16`/`u32` header fields.
    pub fn predict(
        &mut self,
        frames: &[Vec<bool>],
    ) -> std::io::Result<Result<Prediction, ServeError>> {
        let bits = frames.first().map_or(0, Vec::len);
        assert!(
            frames.iter().all(|f| f.len() == bits),
            "all frames of one request must share a width"
        );
        let frame_count = u16::try_from(frames.len()).expect("at most 65535 frames per request");
        let bits_u32 = u32::try_from(bits).expect("frame width fits in u32");
        let mut msg = Vec::with_capacity(7 + frames.len() * bits.div_ceil(8));
        msg.push(OP_PREDICT);
        msg.extend_from_slice(&frame_count.to_le_bytes());
        msg.extend_from_slice(&bits_u32.to_le_bytes());
        for f in frames {
            msg.extend_from_slice(&pack_bits(f));
        }
        self.conn.write_all(&msg)?;
        let mut resp = [0u8; 9];
        self.conn.read_exact(&mut resp)?;
        let class = u32::from_le_bytes([resp[1], resp[2], resp[3], resp[4]]) as usize;
        let batch_size = u32::from_le_bytes([resp[5], resp[6], resp[7], resp[8]]) as usize;
        Ok(match resp[0] {
            STATUS_OK => Ok(Prediction { class, batch_size }),
            STATUS_OVERLOADED => Err(ServeError::Overloaded {
                depth: 0,
                capacity: 0,
            }),
            STATUS_BAD_REQUEST => Err(ServeError::BadRequest("rejected by server".into())),
            STATUS_SHUTTING_DOWN => Err(ServeError::ShuttingDown),
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unknown status byte {other}"),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_packing_round_trips() {
        let frame: Vec<bool> = (0..77).map(|i| i % 3 == 0).collect();
        assert_eq!(unpack_bits(&pack_bits(&frame), frame.len()), frame);
    }
}
