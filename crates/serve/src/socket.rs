//! Unix-domain-socket front end: a tiny fixed-layout binary protocol so
//! out-of-process clients can reach a running [`Server`](crate::Server).
//!
//! ## Wire protocol (all integers little-endian)
//!
//! Request:
//!
//! ```text
//! [u8 op = 1][u16 frame_count][u32 bits_per_frame]
//! [frame_count x ceil(bits_per_frame / 8) bytes, frames bit-packed LSB-first]
//! ```
//!
//! Response:
//!
//! ```text
//! [u8 status][u32 class][u32 batch_size]
//! ```
//!
//! with status `0` = ok, `1` = overloaded (shed), `2` = bad request,
//! `3` = shutting down. `class` and `batch_size` are zero unless
//! status is `0`. A connection carries any number of request/response
//! pairs in sequence.
//!
//! The wire format's LSB-first bit packing is the low 8 bits of the
//! engine's own `u64` word layout, so the server decodes payload bytes
//! *directly* into a [`PackedRequest`] — 8 bytes per word copy plus a
//! pad mask — and never materialises a bool. Each connection owns one
//! reusable payload buffer and one reusable request, and is pinned to
//! an admission shard, so the steady state allocates nothing per
//! request.

use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{PackedRequest, Prediction, ServeError, ServeHandle};

const OP_PREDICT: u8 = 1;

const STATUS_OK: u8 = 0;
const STATUS_OVERLOADED: u8 = 1;
const STATUS_BAD_REQUEST: u8 = 2;
const STATUS_SHUTTING_DOWN: u8 = 3;

fn pack_bits(frame: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; frame.len().div_ceil(8)];
    for (i, &b) in frame.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Reads and drops exactly `remaining` payload bytes so a rejected
/// request leaves the stream positioned at the next header.
fn discard_exact(conn: &mut UnixStream, mut remaining: usize) -> std::io::Result<()> {
    let mut sink = [0u8; 8192];
    while remaining > 0 {
        let take = remaining.min(sink.len());
        conn.read_exact(&mut sink[..take])?;
        remaining -= take;
    }
    Ok(())
}

/// Serves one connection until the peer hangs up or sends garbage.
fn serve_connection(mut conn: UnixStream, handle: &ServeHandle) -> std::io::Result<()> {
    let want = handle.input_width();
    let mut payload: Vec<u8> = Vec::new();
    let mut request = PackedRequest::new();
    loop {
        let mut header = [0u8; 7];
        match conn.read_exact(&mut header) {
            Ok(()) => {}
            // Clean end-of-stream between requests.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let op = header[0];
        let frame_count = u16::from_le_bytes([header[1], header[2]]) as usize;
        let bits = u32::from_le_bytes([header[3], header[4], header[5], header[6]]) as usize;
        if op != OP_PREDICT {
            conn.write_all(&encode_response(&Err(
                ServeError::BadRequest(String::new()),
            )))?;
            return Ok(());
        }
        let bytes_per_frame = bits.div_ceil(8);
        if bits != want {
            // Reject before buffering: skip the payload in bounded
            // chunks (never sized by the peer's claimed width) and keep
            // the connection alive for its next request.
            discard_exact(&mut conn, frame_count * bytes_per_frame)?;
            conn.write_all(&encode_response(&Err(
                ServeError::BadRequest(String::new()),
            )))?;
            continue;
        }
        payload.clear();
        payload.resize(frame_count * bytes_per_frame, 0);
        conn.read_exact(&mut payload)?;
        request.reset(bits);
        for frame in payload.chunks_exact(bytes_per_frame) {
            request.push_frame_from_wire_bytes(frame);
        }
        let result = handle.predict_packed(&mut request);
        conn.write_all(&encode_response(&result))?;
    }
}

fn encode_response(result: &Result<Prediction, ServeError>) -> [u8; 9] {
    let (status, class, batch) = match result {
        Ok(p) => (STATUS_OK, p.class as u32, p.batch_size as u32),
        Err(ServeError::Overloaded { .. }) => (STATUS_OVERLOADED, 0, 0),
        Err(ServeError::BadRequest(_)) => (STATUS_BAD_REQUEST, 0, 0),
        Err(ServeError::ShuttingDown) => (STATUS_SHUTTING_DOWN, 0, 0),
    };
    let mut out = [0u8; 9];
    out[0] = status;
    out[1..5].copy_from_slice(&class.to_le_bytes());
    out[5..9].copy_from_slice(&batch.to_le_bytes());
    out
}

/// A socket front end bound to a filesystem path, fanning connections
/// into a shared [`ServeHandle`].
///
/// Dropping the server stops accepting, joins the accept thread, and
/// removes the socket file. In-flight connections finish serving their
/// current request and then find the listener gone on reconnect.
pub struct SocketServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `path` (removing any stale socket file first) and starts the
    /// accept loop; each connection gets its own serving thread.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listener.
    pub fn bind(path: impl AsRef<Path>, handle: ServeHandle) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("sushi-serve-accept".into())
            .spawn(move || {
                for (n, conn) in listener.incoming().enumerate() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { break };
                    // Connection affinity: pin each connection to one
                    // admission shard so its requests stay FIFO there
                    // and contend only with that shard's peers.
                    let conn_handle = handle.clone().with_affinity(n);
                    // Connection threads are detached; they exit when the
                    // peer disconnects or the inner server shuts down.
                    std::thread::spawn(move || {
                        let _ = serve_connection(conn, &conn_handle);
                    });
                }
            })
            .expect("spawn accept thread");
        Ok(Self {
            path,
            stop,
            accept: Some(accept),
        })
    }

    /// The filesystem path the server is listening on.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection so it observes
        // the stop flag even if no client ever arrives again.
        let _ = UnixStream::connect(&self.path);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A blocking client for the socket protocol.
pub struct SocketClient {
    conn: UnixStream,
}

impl SocketClient {
    /// Connects to a [`SocketServer`] at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from connecting.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            conn: UnixStream::connect(path)?,
        })
    }

    /// Sends one image and blocks for its prediction; server-side
    /// rejections come back as the corresponding [`ServeError`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection breaks or the server
    /// answers with an unknown status byte.
    ///
    /// # Panics
    ///
    /// Panics if `frames` have inconsistent widths or overflow the
    /// protocol's `u16`/`u32` header fields.
    pub fn predict(
        &mut self,
        frames: &[Vec<bool>],
    ) -> std::io::Result<Result<Prediction, ServeError>> {
        let bits = frames.first().map_or(0, Vec::len);
        assert!(
            frames.iter().all(|f| f.len() == bits),
            "all frames of one request must share a width"
        );
        let frame_count = u16::try_from(frames.len()).expect("at most 65535 frames per request");
        let bits_u32 = u32::try_from(bits).expect("frame width fits in u32");
        let mut msg = Vec::with_capacity(7 + frames.len() * bits.div_ceil(8));
        msg.push(OP_PREDICT);
        msg.extend_from_slice(&frame_count.to_le_bytes());
        msg.extend_from_slice(&bits_u32.to_le_bytes());
        for f in frames {
            msg.extend_from_slice(&pack_bits(f));
        }
        self.conn.write_all(&msg)?;
        let mut resp = [0u8; 9];
        self.conn.read_exact(&mut resp)?;
        let class = u32::from_le_bytes([resp[1], resp[2], resp[3], resp[4]]) as usize;
        let batch_size = u32::from_le_bytes([resp[5], resp[6], resp[7], resp[8]]) as usize;
        Ok(match resp[0] {
            STATUS_OK => Ok(Prediction { class, batch_size }),
            STATUS_OVERLOADED => Err(ServeError::Overloaded {
                depth: 0,
                capacity: 0,
            }),
            STATUS_BAD_REQUEST => Err(ServeError::BadRequest("rejected by server".into())),
            STATUS_SHUTTING_DOWN => Err(ServeError::ShuttingDown),
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unknown status byte {other}"),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The client's wire packing and the server's direct byte-to-word
        /// decode are exact inverses at widths straddling both the byte
        /// and the `u64` word boundary.
        #[test]
        fn wire_packing_round_trips_through_packed_request(
            width_idx in 0usize..8,
            seed in 0u64..u64::MAX,
            frame_count in 0usize..4,
        ) {
            let width = [1usize, 7, 8, 9, 63, 64, 65, 130][width_idx];
            let mut st = seed | 1;
            let mut step = move || {
                st ^= st << 13;
                st ^= st >> 7;
                st ^= st << 17;
                st
            };
            let frames: Vec<Vec<bool>> = (0..frame_count)
                .map(|_| (0..width).map(|_| step() % 3 == 0).collect())
                .collect();
            let mut request = PackedRequest::new();
            request.reset(width);
            for f in &frames {
                request.push_frame_from_wire_bytes(&pack_bits(f));
            }
            prop_assert_eq!(request.to_bool_frames(), frames.clone());
            prop_assert_eq!(request, PackedRequest::from_bool_frames(width, &frames));
        }
    }
}
