//! In-process serving harness: sharded bounded admission feeding a pool
//! of executor threads that coalesce requests into dynamic micro-batches.
//!
//! Many client threads call [`ServeHandle::predict`] (or the zero-copy
//! [`ServeHandle::predict_packed`]) concurrently; each call blocks until
//! its image has been classified (or shed). Requests travel as
//! [`PackedRequest`] — bit-packed `u64` spike words, the engine's native
//! representation — from the edge to the engine with no bool detour.
//! Admission lands on one of N shards (own mutex each) and M executor
//! threads drain them in micro-batches triggered by size (`max_batch`
//! waiting on a shard) or deadline (oldest request waited `max_delay`),
//! stealing from sibling shards when their own is quiet. Batches run
//! through the packed/bitplane engines, so served predictions are
//! bitwise identical to offline batch inference for every shard and
//! executor count.
//!
//! The steady-state path allocates nothing per request: request slots
//! are pooled and payloads move by `mem::swap`, executors own long-lived
//! scratch, and every queue keeps its capacity across drains.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sushi_ssnn::{argmax_low, Backend, BitplaneScratch, PackedSnn, PredictScratch};

use crate::ServeConfig;

/// A request in the engine's native representation: bit-packed `u64`
/// spike frames with the width and frame count in the header. This is
/// the canonical in-flight type of the serving pipeline — the socket
/// front end decodes wire bytes straight into one, the in-process
/// handle packs bools once at the edge, and the engine consumes the
/// words directly.
pub type PackedRequest = sushi_ssnn::PackedFrames;

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed immediately.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Configured admission bound.
        capacity: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request was malformed (e.g. wrong frame width).
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
        }
    }
}

impl Error for ServeError {}

/// A served classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Winning output class.
    pub class: usize,
    /// Size of the micro-batch this request was served in (≥ 1).
    pub batch_size: usize,
}

/// Cumulative server-side counters, readable at any time without
/// touching any admission lock (every counter is an atomic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted into a shard queue.
    pub admitted: u64,
    /// Requests shed at admission (total depth at capacity).
    pub rejected: u64,
    /// Requests answered with a prediction.
    pub served: u64,
    /// Micro-batches dispatched to the engine.
    pub batches: u64,
    /// Micro-batches served on the 64-lane bitplane path (deep enough
    /// for `bitplane_min_batch` under [`Backend::Bitplane`]).
    pub bitplane_batches: u64,
    /// Micro-batches an executor drained from a non-home shard (work
    /// stealing under skewed placement).
    pub stolen_batches: u64,
    /// Largest total queue depth observed at admission time.
    pub max_queue_depth: usize,
}

impl ServerStats {
    /// Mean images per dispatched micro-batch (0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }
}

/// Rendezvous slot a waiting client shares with the executor that serves
/// its request. The payload moves in and out by `mem::swap`; slots are
/// pooled so steady-state serving allocates none.
struct Slot {
    body: Mutex<SlotBody>,
    ready: Condvar,
}

struct SlotBody {
    frames: PackedRequest,
    done: bool,
    class: usize,
    batch_size: usize,
}

impl Slot {
    fn new() -> Self {
        Slot {
            body: Mutex::new(SlotBody {
                frames: PackedRequest::new(),
                done: false,
                class: 0,
                batch_size: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotBody> {
        self.body.lock().expect("slot lock poisoned")
    }
}

struct Queued {
    at: Instant,
    slot: Arc<Slot>,
}

/// One admission shard: an independent queue under its own mutex.
struct Shard {
    queue: Mutex<VecDeque<Queued>>,
}

/// Executor wake-up channel: a sequence number bumped on every event an
/// executor might be waiting for (admission, shutdown). Executors read
/// the sequence *before* scanning the shards and only sleep if it has
/// not moved since, so a wake between scan and sleep is never lost.
struct Signal {
    seq: Mutex<u64>,
    work: Condvar,
}

struct Shared {
    snn: PackedSnn,
    cfg: ServeConfig,
    shards: Vec<Shard>,
    signal: Signal,
    /// Total requests admitted and not yet drained, across all shards.
    /// The lock-free admission bound and [`ServeHandle::queue_depth`].
    depth: AtomicUsize,
    shutdown: AtomicBool,
    pool: Mutex<Vec<Arc<Slot>>>,
    next_shard: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    bitplane_batches: AtomicU64,
    stolen_batches: AtomicU64,
    max_queue_depth: AtomicUsize,
}

impl Shared {
    /// Bumps the signal sequence and wakes one idle executor.
    fn wake_one(&self) {
        *self.signal.seq.lock().expect("signal lock poisoned") += 1;
        self.signal.work.notify_one();
    }

    /// Bumps the signal sequence and wakes every idle executor.
    fn wake_all(&self) {
        *self.signal.seq.lock().expect("signal lock poisoned") += 1;
        self.signal.work.notify_all();
    }

    /// Checks a pooled slot out (or allocates one cold).
    fn checkout_slot(&self) -> Arc<Slot> {
        let recycled = self.pool.lock().expect("pool lock poisoned").pop();
        recycled.unwrap_or_else(|| Arc::new(Slot::new()))
    }

    /// Returns a slot to the pool, keeping at most enough for every
    /// queueable plus every in-flight request.
    fn return_slot(&self, slot: Arc<Slot>) {
        let cap = self.cfg.queue_capacity + self.cfg.executors * self.cfg.max_batch;
        let mut pool = self.pool.lock().expect("pool lock poisoned");
        if pool.len() < cap {
            pool.push(slot);
        }
    }
}

/// A running sharded micro-batching inference server.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops
/// admission, drains every already-admitted request, and joins the
/// executor threads.
///
/// # Examples
///
/// ```
/// use sushi_serve::{ServeConfig, Server};
/// use sushi_ssnn::{PackedLayer, PackedSnn};
///
/// let layer = PackedLayer::from_parts(&[1; 8], 4, 2, &[0, 0]);
/// let snn = PackedSnn::from_layers(vec![layer]);
/// let server = Server::start(snn, ServeConfig::new().shards(1).executors(1));
/// let handle = server.handle();
/// let image = vec![vec![true, false, true, false]];
/// let served = handle.predict(image).unwrap();
/// assert!(served.class < 2);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the executor threads over `snn` with the given
    /// configuration.
    pub fn start(snn: PackedSnn, cfg: ServeConfig) -> Self {
        let shards = (0..cfg.shards.max(1))
            .map(|_| Shard {
                queue: Mutex::new(VecDeque::new()),
            })
            .collect();
        let executor_count = cfg.executors.max(1);
        let shared = Arc::new(Shared {
            snn,
            cfg,
            shards,
            signal: Signal {
                seq: Mutex::new(0),
                work: Condvar::new(),
            },
            depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            pool: Mutex::new(Vec::new()),
            next_shard: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            bitplane_batches: AtomicU64::new(0),
            stolen_batches: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
        });
        let executors = (0..executor_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sushi-serve-exec-{i}"))
                    .spawn(move || executor_loop(&shared, i % shared.shards.len()))
                    .expect("spawn executor thread")
            })
            .collect();
        Server { shared, executors }
    }

    /// A cloneable client handle for submitting requests. Each request
    /// is placed round-robin across shards; pin a handle to one shard
    /// with [`ServeHandle::with_affinity`].
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
            affinity: None,
        }
    }

    /// Current cumulative counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            served: self.shared.served.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            bitplane_batches: self.shared.bitplane_batches.load(Ordering::Relaxed),
            stolen_batches: self.shared.stolen_batches.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Stops admission, serves every already-admitted request, and
    /// joins the executors. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.executors.drain(..) {
            handle.join().expect("executor thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Client-side handle to a [`Server`]; cheap to clone and share across
/// threads.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    affinity: Option<usize>,
}

impl ServeHandle {
    /// The network's input width, which every submitted frame must
    /// match. Front ends use this to validate (and reject) requests
    /// before buffering their payload.
    pub fn input_width(&self) -> usize {
        self.shared.snn.input_width()
    }

    /// This handle pinned to one admission shard (wrapped into range):
    /// all its requests queue there, giving a connection FIFO order on
    /// its shard and admission contention only with that shard's peers.
    pub fn with_affinity(mut self, shard: usize) -> Self {
        self.affinity = Some(shard % self.shared.shards.len());
        self
    }

    /// Submits one image (its spike frames) and blocks until it is
    /// served or shed. The frames are packed into the engine's `u64`
    /// word representation once, here at the edge — the zero-copy twin
    /// is [`ServeHandle::predict_packed`].
    ///
    /// Rejections are immediate: a full queue returns
    /// [`ServeError::Overloaded`] without blocking, and frames whose
    /// width does not match the network return
    /// [`ServeError::BadRequest`].
    pub fn predict(&self, frames: Vec<Vec<bool>>) -> Result<Prediction, ServeError> {
        let want = self.shared.snn.input_width();
        if let Some(bad) = frames.iter().find(|f| f.len() != want) {
            return Err(ServeError::BadRequest(format!(
                "frame width {} does not match network input width {want}",
                bad.len()
            )));
        }
        let slot = self.shared.checkout_slot();
        {
            let mut body = slot.lock();
            body.frames.reset(want);
            for f in &frames {
                body.frames.push_frame_from_bools(f);
            }
            body.done = false;
        }
        let outcome = self.submit_and_wait(&slot);
        self.shared.return_slot(slot);
        outcome
    }

    /// Submits one already-packed request and blocks until it is served
    /// or shed. The payload is lent to the server by `mem::swap` — no
    /// copy, no allocation — and swapped back before returning, so the
    /// caller's buffer (and its capacity) survives for reuse.
    ///
    /// The request's width must equal the network input width even when
    /// it has zero frames (build it with
    /// [`PackedRequest::reset`]\(width\) so the width always travels
    /// with the buffer); a mismatch returns
    /// [`ServeError::BadRequest`] and a full queue
    /// [`ServeError::Overloaded`], both immediate.
    pub fn predict_packed(&self, request: &mut PackedRequest) -> Result<Prediction, ServeError> {
        let want = self.shared.snn.input_width();
        if request.width() != want {
            return Err(ServeError::BadRequest(format!(
                "frame width {} does not match network input width {want}",
                request.width()
            )));
        }
        let slot = self.shared.checkout_slot();
        {
            let mut body = slot.lock();
            std::mem::swap(&mut body.frames, request);
            body.done = false;
        }
        let outcome = self.submit_and_wait(&slot);
        std::mem::swap(&mut slot.lock().frames, request);
        self.shared.return_slot(slot);
        outcome
    }

    /// Enqueues an armed slot and blocks on its condvar until an
    /// executor marks it done (or sheds it at admission).
    fn submit_and_wait(&self, slot: &Arc<Slot>) -> Result<Prediction, ServeError> {
        let shared = &*self.shared;
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // Lock-free admission bound: claim a depth unit, undo on shed.
        let depth = shared.depth.fetch_add(1, Ordering::AcqRel);
        if depth >= shared.cfg.queue_capacity {
            shared.depth.fetch_sub(1, Ordering::AcqRel);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                depth,
                capacity: shared.cfg.queue_capacity,
            });
        }
        let shard = self
            .affinity
            .unwrap_or_else(|| shared.next_shard.fetch_add(1, Ordering::Relaxed))
            % shared.shards.len();
        {
            let mut queue = shared.shards[shard].queue.lock().expect("shard poisoned");
            // Re-check under the shard lock: after the flag is set no
            // new request is ever queued, so draining executors may
            // exit once the depth gauge reaches zero.
            if shared.shutdown.load(Ordering::Acquire) {
                drop(queue);
                shared.depth.fetch_sub(1, Ordering::AcqRel);
                shared.wake_all();
                return Err(ServeError::ShuttingDown);
            }
            queue.push_back(Queued {
                at: Instant::now(),
                slot: Arc::clone(slot),
            });
        }
        shared.admitted.fetch_add(1, Ordering::Relaxed);
        shared
            .max_queue_depth
            .fetch_max(depth + 1, Ordering::Relaxed);
        shared.wake_one();
        let mut body = slot.lock();
        while !body.done {
            body = slot.ready.wait(body).expect("slot lock poisoned");
        }
        Ok(Prediction {
            class: body.class,
            batch_size: body.batch_size,
        })
    }

    /// Snapshot of the total queue depth across shards (one atomic
    /// load; diagnostic and racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }
}

/// Everything an executor owns for its lifetime: inference scratch,
/// per-class count buffers, and the batch staging area. Reused across
/// every batch, so the steady state allocates nothing.
struct ExecCtx {
    scratch: PredictScratch,
    bitplane: BitplaneScratch,
    counts: Vec<Vec<u32>>,
    frames: Vec<PackedRequest>,
    batch: Vec<Arc<Slot>>,
}

impl ExecCtx {
    fn new() -> Self {
        ExecCtx {
            scratch: PredictScratch::new(),
            bitplane: BitplaneScratch::new(),
            counts: Vec::new(),
            frames: Vec::new(),
            batch: Vec::new(),
        }
    }
}

/// Serves the staged batch in `ctx.batch`: payloads are swapped out of
/// the slots, classified (bitplane path for deep batches), swapped back
/// and marked done. Clears the staging area, keeping every allocation.
fn run_batch(shared: &Shared, ctx: &mut ExecCtx) {
    let n = ctx.batch.len();
    while ctx.frames.len() < n {
        ctx.frames.push(PackedRequest::new());
    }
    for (slot, staged) in ctx.batch.iter().zip(&mut ctx.frames) {
        std::mem::swap(&mut slot.lock().frames, staged);
    }
    // The bitplane path pays a transpose per lane group; it only wins
    // once the micro-batch is deep enough to fill lanes, so shallow
    // batches fall back to the per-image packed path.
    let bitplane = shared.cfg.backend == Backend::Bitplane && n >= shared.cfg.bitplane_min_batch;
    if bitplane {
        let classes = shared.snn.classes();
        while ctx.counts.len() < 64.min(n) {
            ctx.counts.push(Vec::with_capacity(classes));
        }
        let mut served = 0usize;
        for group_start in (0..n).step_by(64) {
            let group = &ctx.frames[group_start..n.min(group_start + 64)];
            shared.snn.bitplane_group_counts_packed(
                group,
                &mut ctx.bitplane,
                &mut ctx.counts[..group.len()],
            );
            for (lane, counts) in ctx.counts[..group.len()].iter().enumerate() {
                let mut body = ctx.batch[group_start + lane].lock();
                body.class = argmax_low(counts);
                served += 1;
            }
        }
        debug_assert_eq!(served, n);
    } else {
        for (slot, staged) in ctx.batch.iter().zip(&ctx.frames) {
            let class = shared.snn.predict_packed_with(staged, &mut ctx.scratch);
            slot.lock().class = class;
        }
    }
    shared.batches.fetch_add(1, Ordering::Relaxed);
    if bitplane {
        shared.bitplane_batches.fetch_add(1, Ordering::Relaxed);
    }
    shared.served.fetch_add(n as u64, Ordering::Relaxed);
    for (slot, staged) in ctx.batch.iter().zip(&mut ctx.frames) {
        let mut body = slot.lock();
        std::mem::swap(&mut body.frames, staged);
        body.batch_size = n;
        body.done = true;
        drop(body);
        slot.ready.notify_one();
    }
    ctx.batch.clear();
}

/// One executor thread: scan the shards (home first), dispatch the
/// first batch whose size or deadline trigger fired (or anything at all
/// during shutdown drain), steal across shards when home is quiet, and
/// sleep on the signal condvar — bounded by the nearest pending
/// deadline — when nothing is dispatchable.
fn executor_loop(shared: &Shared, home: usize) {
    let mut ctx = ExecCtx::new();
    let shard_count = shared.shards.len();
    loop {
        let observed = *shared.signal.seq.lock().expect("signal lock poisoned");
        let shutdown = shared.shutdown.load(Ordering::Acquire);
        let mut nearest_deadline: Option<Instant> = None;
        let mut dispatched = false;
        for i in 0..shard_count {
            let idx = (home + i) % shard_count;
            let shard = &shared.shards[idx];
            let mut queue = shard.queue.lock().expect("shard poisoned");
            let Some(front) = queue.front() else { continue };
            let deadline = front.at + shared.cfg.max_delay;
            let ripe =
                queue.len() >= shared.cfg.max_batch || shutdown || Instant::now() >= deadline;
            if !ripe {
                drop(queue);
                nearest_deadline = Some(nearest_deadline.map_or(deadline, |d| d.min(deadline)));
                continue;
            }
            let take = queue.len().min(shared.cfg.max_batch);
            ctx.batch.extend(queue.drain(..take).map(|q| q.slot));
            drop(queue);
            shared.depth.fetch_sub(take, Ordering::AcqRel);
            if i != 0 {
                shared.stolen_batches.fetch_add(1, Ordering::Relaxed);
            }
            run_batch(shared, &mut ctx);
            dispatched = true;
            break;
        }
        if dispatched {
            if shutdown {
                // Draining: siblings may be asleep with work still
                // spread across shards they have already scanned.
                shared.wake_all();
            }
            continue;
        }
        if shutdown && shared.depth.load(Ordering::Acquire) == 0 {
            // Nothing queued and nothing can be queued again: wake any
            // sibling still asleep so it observes the same and exits.
            shared.wake_all();
            return;
        }
        let timeout = match nearest_deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            // Belt and braces: no deadline pending means we wake on
            // signal; the cap bounds any missed-wake pathology.
            None => Duration::from_millis(250),
        };
        let seq = shared.signal.seq.lock().expect("signal lock poisoned");
        if *seq != observed {
            continue;
        }
        let _ = shared
            .signal
            .work
            .wait_timeout(seq, timeout)
            .expect("signal lock poisoned");
    }
}
