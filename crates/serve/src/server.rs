//! In-process serving harness: bounded admission queue feeding a batcher
//! thread that coalesces requests into dynamic micro-batches.
//!
//! Many client threads call [`ServeHandle::predict`] concurrently; each
//! call blocks until its image has been classified (or shed).  A single
//! batcher thread drains the queue in micro-batches triggered by size
//! (`max_batch` waiting) or deadline (oldest request waited `max_delay`)
//! and runs them through [`PackedSnn::predict_batch`], so served
//! predictions are bitwise identical to offline batch inference.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sushi_ssnn::{Backend, PackedSnn, PredictScratch};

use crate::ServeConfig;

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed immediately.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Configured admission bound.
        capacity: usize,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request was malformed (e.g. wrong frame width).
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
        }
    }
}

impl Error for ServeError {}

/// A served classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Winning output class.
    pub class: usize,
    /// Size of the micro-batch this request was served in (≥ 1).
    pub batch_size: usize,
}

/// Cumulative server-side counters, readable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests shed at admission (queue full).
    pub rejected: u64,
    /// Requests answered with a prediction.
    pub served: u64,
    /// Micro-batches dispatched to the engine.
    pub batches: u64,
    /// Micro-batches served on the 64-lane bitplane path (deep enough
    /// for `bitplane_min_batch` under [`Backend::Bitplane`]).
    pub bitplane_batches: u64,
    /// Largest queue depth observed at admission time.
    pub max_queue_depth: usize,
}

impl ServerStats {
    /// Mean images per dispatched micro-batch (0 when nothing ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }
}

struct PendingRequest {
    frames: Vec<Vec<bool>>,
    enqueued: Instant,
    responder: mpsc::Sender<Result<Prediction, ServeError>>,
}

struct QueueState {
    queue: VecDeque<PendingRequest>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work: Condvar,
    snn: PackedSnn,
    cfg: ServeConfig,
    admitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    bitplane_batches: AtomicU64,
    max_queue_depth: AtomicUsize,
}

/// A running micro-batching inference server.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops admission,
/// drains every already-admitted request, and joins the batcher thread.
///
/// # Examples
///
/// ```
/// use sushi_serve::{ServeConfig, Server};
/// use sushi_ssnn::{PackedLayer, PackedSnn};
///
/// let layer = PackedLayer::from_parts(&[1; 8], 4, 2, &[0, 0]);
/// let snn = PackedSnn::from_layers(vec![layer]);
/// let server = Server::start(snn, ServeConfig::new().workers(1));
/// let handle = server.handle();
/// let image = vec![vec![true, false, true, false]];
/// let served = handle.predict(image).unwrap();
/// assert!(served.class < 2);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts the batcher thread over `snn` with the given configuration.
    pub fn start(snn: PackedSnn, cfg: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            snn,
            cfg,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            bitplane_batches: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("sushi-serve-batcher".into())
            .spawn(move || batcher_loop(&worker_shared))
            .expect("spawn batcher thread");
        Server {
            shared,
            batcher: Some(batcher),
        }
    }

    /// A cloneable client handle for submitting requests.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Current cumulative counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            served: self.shared.served.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            bitplane_batches: self.shared.bitplane_batches.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Stops admission, serves every already-admitted request, and joins
    /// the batcher. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("serve lock poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.batcher.take() {
            handle.join().expect("batcher thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Client-side handle to a [`Server`]; cheap to clone and share across
/// threads.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Submits one image (its spike frames) and blocks until it is served
    /// or shed.
    ///
    /// Rejections are immediate: a full queue returns
    /// [`ServeError::Overloaded`] without blocking, and frames whose
    /// width does not match the network return
    /// [`ServeError::BadRequest`].
    pub fn predict(&self, frames: Vec<Vec<bool>>) -> Result<Prediction, ServeError> {
        let want = self.shared.snn.input_width();
        if let Some(bad) = frames.iter().find(|f| f.len() != want) {
            return Err(ServeError::BadRequest(format!(
                "frame width {} does not match network input width {want}",
                bad.len()
            )));
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("serve lock poisoned");
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            let depth = state.queue.len();
            if depth >= self.shared.cfg.queue_capacity {
                drop(state);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth,
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            state.queue.push_back(PendingRequest {
                frames,
                enqueued: Instant::now(),
                responder: tx,
            });
            let depth = state.queue.len();
            self.shared
                .max_queue_depth
                .fetch_max(depth, Ordering::Relaxed);
        }
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        self.shared.work.notify_all();
        // The batcher always answers each drained request, and a batcher
        // that exits first drops the sender, surfacing as ShuttingDown.
        rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Snapshot of the current queue depth (diagnostic; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("serve lock poisoned")
            .queue
            .len()
    }
}

/// Waits for a dispatchable batch, then drains up to `max_batch`
/// requests. Returns `None` once the queue is empty after shutdown.
fn collect_batch(shared: &Shared) -> Option<Vec<PendingRequest>> {
    let mut state = shared.state.lock().expect("serve lock poisoned");
    loop {
        if state.queue.is_empty() {
            if state.shutdown {
                return None;
            }
            state = shared.work.wait(state).expect("serve lock poisoned");
            continue;
        }
        // Something is waiting: dispatch when the size trigger fires, the
        // deadline trigger fires, or shutdown demands an immediate drain.
        if state.queue.len() >= shared.cfg.max_batch || state.shutdown {
            break;
        }
        let oldest = state.queue.front().expect("non-empty queue").enqueued;
        let now = Instant::now();
        let deadline = oldest + shared.cfg.max_delay;
        if now >= deadline {
            break;
        }
        let (next, timeout) = shared
            .work
            .wait_timeout(state, deadline - now)
            .expect("serve lock poisoned");
        state = next;
        if timeout.timed_out() {
            break;
        }
    }
    let take = state.queue.len().min(shared.cfg.max_batch);
    Some(state.queue.drain(..take).collect())
}

fn batcher_loop(shared: &Shared) {
    let mut scratch = PredictScratch::new();
    while let Some(batch) = collect_batch(shared) {
        if batch.is_empty() {
            continue;
        }
        let batch_size = batch.len();
        // The bitplane path pays a transpose per lane group; it only
        // wins once the micro-batch is deep enough to fill lanes, so
        // shallow batches fall back to the per-image packed path.
        let bitplane =
            shared.cfg.backend == Backend::Bitplane && batch_size >= shared.cfg.bitplane_min_batch;
        let classes: Vec<usize> = if bitplane {
            let frames: Vec<&[Vec<bool>]> = batch.iter().map(|req| req.frames.as_slice()).collect();
            shared
                .snn
                .predict_batch_bitplane(&frames, shared.cfg.workers)
        } else if shared.cfg.workers <= 1 {
            // Single-worker path: reuse one long-lived scratch across
            // every request the server ever sees.
            batch
                .iter()
                .map(|req| shared.snn.predict_with(&req.frames, &mut scratch))
                .collect()
        } else {
            let frames: Vec<&[Vec<bool>]> = batch.iter().map(|req| req.frames.as_slice()).collect();
            shared.snn.predict_batch(&frames, shared.cfg.workers)
        };
        shared.batches.fetch_add(1, Ordering::Relaxed);
        if bitplane {
            shared.bitplane_batches.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .served
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        for (req, class) in batch.into_iter().zip(classes) {
            // A client that gave up (dropped its receiver) is fine to miss.
            let _ = req.responder.send(Ok(Prediction { class, batch_size }));
        }
    }
}
