//! Serving-side configuration: micro-batch trigger, admission bound and
//! inference parallelism.

use std::time::Duration;
use sushi_ssnn::Backend;

/// Tuning knobs of a [`Server`](crate::Server).
///
/// The batcher coalesces admitted requests into one inference batch when
/// *either* trigger fires:
///
/// * **size** — `max_batch` requests are waiting, or
/// * **deadline** — the oldest waiting request has been queued for
///   `max_delay`.
///
/// Admission is bounded by `queue_capacity`: a request arriving at a full
/// queue is shed immediately with
/// [`ServeError::Overloaded`](crate::ServeError::Overloaded) instead of
/// growing the queue (and every admitted request's latency) without
/// bound.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use sushi_serve::ServeConfig;
///
/// let cfg = ServeConfig::new()
///     .max_batch(16)
///     .max_delay(Duration::from_millis(1))
///     .queue_capacity(64)
///     .workers(2);
/// assert_eq!(cfg.max_batch, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Size trigger: largest batch handed to the engine in one sweep.
    pub max_batch: usize,
    /// Deadline trigger: longest the oldest admitted request waits before
    /// its (possibly partial) batch is dispatched anyway.
    pub max_delay: Duration,
    /// Admission bound: requests beyond this many waiting are shed.
    pub queue_capacity: usize,
    /// Inference worker threads per batch (`PackedSnn::predict_batch`);
    /// `1` runs batches on the batcher thread with one long-lived scratch.
    pub workers: usize,
    /// Which inference engine serves batches. [`Backend::Bitplane`]
    /// (the default) evaluates micro-batches of at least
    /// `bitplane_min_batch` on the 64-lane bitplane path and falls back
    /// to the per-image packed path below it; [`Backend::Packed`] always
    /// serves per-image. The server only holds a packed network, so
    /// [`Backend::Scalar`] is honored as `Packed` — every backend is
    /// bitwise identical, the knob only moves throughput.
    pub backend: Backend,
    /// Smallest micro-batch the bitplane path is worth: below this many
    /// coalesced requests the per-image packed path serves instead
    /// (transposing a near-empty lane group costs more than it saves).
    /// Only consulted when `backend` is [`Backend::Bitplane`].
    pub bitplane_min_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            workers,
            backend: Backend::Bitplane,
            bitplane_min_batch: 8,
        }
    }
}

impl ServeConfig {
    /// The default configuration (batch 32, 2 ms deadline, capacity 128,
    /// one worker per CPU, bitplane backend from 8 coalesced requests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the size trigger (clamped to at least 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the deadline trigger.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the admission bound (clamped to at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-batch inference worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the serving backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the smallest micro-batch served on the bitplane path
    /// (clamped to at least 1).
    pub fn bitplane_min_batch(mut self, min_batch: usize) -> Self {
        self.bitplane_min_batch = min_batch.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_values() {
        let cfg = ServeConfig::new()
            .max_batch(0)
            .queue_capacity(0)
            .workers(0)
            .bitplane_min_batch(0);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.bitplane_min_batch, 1);
    }

    #[test]
    fn bitplane_backend_is_the_default() {
        let cfg = ServeConfig::new();
        assert_eq!(cfg.backend, Backend::Bitplane);
        assert_eq!(cfg.bitplane_min_batch, 8);
        assert_eq!(cfg.backend(Backend::Packed).backend, Backend::Packed);
    }
}
