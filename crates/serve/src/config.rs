//! Serving-side configuration: micro-batch trigger, admission bound and
//! inference parallelism.

use std::time::Duration;

/// Tuning knobs of a [`Server`](crate::Server).
///
/// The batcher coalesces admitted requests into one inference batch when
/// *either* trigger fires:
///
/// * **size** — `max_batch` requests are waiting, or
/// * **deadline** — the oldest waiting request has been queued for
///   `max_delay`.
///
/// Admission is bounded by `queue_capacity`: a request arriving at a full
/// queue is shed immediately with
/// [`ServeError::Overloaded`](crate::ServeError::Overloaded) instead of
/// growing the queue (and every admitted request's latency) without
/// bound.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use sushi_serve::ServeConfig;
///
/// let cfg = ServeConfig::new()
///     .max_batch(16)
///     .max_delay(Duration::from_millis(1))
///     .queue_capacity(64)
///     .workers(2);
/// assert_eq!(cfg.max_batch, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Size trigger: largest batch handed to the engine in one sweep.
    pub max_batch: usize,
    /// Deadline trigger: longest the oldest admitted request waits before
    /// its (possibly partial) batch is dispatched anyway.
    pub max_delay: Duration,
    /// Admission bound: requests beyond this many waiting are shed.
    pub queue_capacity: usize,
    /// Inference worker threads per batch (`PackedSnn::predict_batch`);
    /// `1` runs batches on the batcher thread with one long-lived scratch.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            workers,
        }
    }
}

impl ServeConfig {
    /// The default configuration (batch 32, 2 ms deadline, capacity 128,
    /// one worker per CPU).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the size trigger (clamped to at least 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the deadline trigger.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the admission bound (clamped to at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-batch inference worker count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_values() {
        let cfg = ServeConfig::new().max_batch(0).queue_capacity(0).workers(0);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.workers, 1);
    }
}
