//! Serving-side configuration: micro-batch trigger, admission bound,
//! shard topology and executor parallelism.

use std::time::Duration;
use sushi_ssnn::Backend;

/// Tuning knobs of a [`Server`](crate::Server).
///
/// Admitted requests land on one of `shards` admission queues
/// (round-robin for anonymous handles, connection-affine for socket
/// clients) and are drained by `executors` executor threads, each owning
/// persistent inference scratch. An executor dispatches a shard's batch
/// when *either* trigger fires:
///
/// * **size** — `max_batch` requests are waiting on that shard, or
/// * **deadline** — the shard's oldest waiting request has been queued
///   for `max_delay`.
///
/// Executors prefer their home shard but steal whole batches from any
/// dispatchable shard, so skewed placement cannot strand requests.
///
/// Admission is bounded by `queue_capacity` *in total across shards*
/// (tracked by a lock-free gauge): a request arriving over the bound is
/// shed immediately with
/// [`ServeError::Overloaded`](crate::ServeError::Overloaded) instead of
/// growing the queue (and every admitted request's latency) without
/// bound.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use sushi_serve::ServeConfig;
///
/// let cfg = ServeConfig::new()
///     .max_batch(16)
///     .max_delay(Duration::from_millis(1))
///     .queue_capacity(64)
///     .shards(2)
///     .executors(2);
/// assert_eq!(cfg.max_batch, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Size trigger: largest batch handed to the engine in one sweep.
    pub max_batch: usize,
    /// Deadline trigger: longest the oldest admitted request waits before
    /// its (possibly partial) batch is dispatched anyway.
    pub max_delay: Duration,
    /// Admission bound: requests beyond this many waiting (summed across
    /// all shards) are shed.
    pub queue_capacity: usize,
    /// Admission shard count: independent queues with their own mutex,
    /// so concurrent admissions contend 1/N as often. More shards than
    /// executors rarely helps; the default is `min(4, host CPUs)`.
    pub shards: usize,
    /// Executor thread count: threads draining shards into inference
    /// batches, each with its own long-lived scratch. Batches run
    /// single-threaded on their executor — cross-batch parallelism
    /// replaces the old intra-batch worker fan-out.
    pub executors: usize,
    /// Which inference engine serves batches. [`Backend::Bitplane`]
    /// (the default) evaluates micro-batches of at least
    /// `bitplane_min_batch` on the 64-lane bitplane path and falls back
    /// to the per-image packed path below it; [`Backend::Packed`] always
    /// serves per-image. The server only holds a packed network, so
    /// [`Backend::Scalar`] is honored as `Packed` — every backend is
    /// bitwise identical, the knob only moves throughput.
    pub backend: Backend,
    /// Smallest micro-batch the bitplane path is worth: below this many
    /// coalesced requests the per-image packed path serves instead
    /// (transposing a near-empty lane group costs more than it saves).
    /// Only consulted when `backend` is [`Backend::Bitplane`].
    pub bitplane_min_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 128,
            shards: cpus.min(4),
            executors: cpus,
            backend: Backend::Bitplane,
            bitplane_min_batch: 8,
        }
    }
}

impl ServeConfig {
    /// The default configuration (batch 32, 2 ms deadline, capacity 128,
    /// `min(4, CPUs)` shards, one executor per CPU, bitplane backend from
    /// 8 coalesced requests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the size trigger (clamped to at least 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the deadline trigger.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the admission bound (clamped to at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the admission shard count (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the executor thread count (clamped to at least 1).
    pub fn executors(mut self, executors: usize) -> Self {
        self.executors = executors.max(1);
        self
    }

    /// Alias for [`ServeConfig::executors`], kept from the
    /// single-queue pipeline where per-batch inference workers were the
    /// only parallelism knob.
    pub fn workers(self, workers: usize) -> Self {
        self.executors(workers)
    }

    /// Sets the serving backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the smallest micro-batch served on the bitplane path
    /// (clamped to at least 1).
    pub fn bitplane_min_batch(mut self, min_batch: usize) -> Self {
        self.bitplane_min_batch = min_batch.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_values() {
        let cfg = ServeConfig::new()
            .max_batch(0)
            .queue_capacity(0)
            .shards(0)
            .executors(0)
            .bitplane_min_batch(0);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.executors, 1);
        assert_eq!(cfg.bitplane_min_batch, 1);
    }

    #[test]
    fn workers_aliases_executors() {
        let cfg = ServeConfig::new().workers(7);
        assert_eq!(cfg.executors, 7);
        assert_eq!(ServeConfig::new().workers(0).executors, 1);
    }

    #[test]
    fn bitplane_backend_is_the_default() {
        let cfg = ServeConfig::new();
        assert_eq!(cfg.backend, Backend::Bitplane);
        assert_eq!(cfg.bitplane_min_batch, 8);
        assert!(cfg.shards >= 1 && cfg.shards <= 4);
        assert_eq!(cfg.backend(Backend::Packed).backend, Backend::Packed);
    }
}
