//! Open- and closed-loop load generation against a running server, with
//! percentile latency reporting.
//!
//! * **Closed loop** — `clients` threads each submit back-to-back: a new
//!   request leaves only when the previous answer arrives. Measures the
//!   server's sustainable throughput at a fixed concurrency.
//! * **Open loop** — requests are due on an absolute schedule derived
//!   from a target rate, independent of how fast answers return, and
//!   latency is measured from the *scheduled* arrival time. A server
//!   that falls behind therefore shows the queueing delay instead of
//!   hiding it (no coordinated omission).

use std::time::{Duration, Instant};

use sushi_sim::Json;

use crate::{PackedRequest, ServeError, ServeHandle};

/// Latency percentiles over one load-generation run, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

impl LatencySummary {
    /// Summarizes a set of samples; all-zero when `samples` is empty.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Self {
                p50_us: 0.0,
                p95_us: 0.0,
                p99_us: 0.0,
                max_us: 0.0,
                mean_us: 0.0,
            };
        }
        let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let pct = |p: f64| {
            let idx = ((us.len() as f64 * p).ceil() as usize).clamp(1, us.len()) - 1;
            us[idx]
        };
        Self {
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: us[us.len() - 1],
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
        }
    }

    /// JSON object with one field per percentile.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("p50_us", Json::Num(self.p50_us)),
            ("p95_us", Json::Num(self.p95_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("max_us", Json::Num(self.max_us)),
            ("mean_us", Json::Num(self.mean_us)),
        ])
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Generator threads used.
    pub clients: usize,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
    /// Requests submitted.
    pub sent: u64,
    /// Requests answered with a prediction.
    pub ok: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Served predictions per wall-clock second.
    pub images_per_s: f64,
    /// Latency of served requests (closed loop: call to answer; open
    /// loop: scheduled arrival to answer).
    pub latency: LatencySummary,
}

impl LoadReport {
    /// JSON object mirroring the struct, `latency` nested.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", Json::Str(self.mode.to_owned())),
            ("clients", Json::UInt(self.clients as u64)),
            ("wall_s", Json::Num(self.wall_s)),
            ("sent", Json::UInt(self.sent)),
            ("ok", Json::UInt(self.ok)),
            ("rejected", Json::UInt(self.rejected)),
            ("images_per_s", Json::Num(self.images_per_s)),
            ("latency", self.latency.to_json()),
        ])
    }
}

#[derive(Default)]
struct ClientTally {
    sent: u64,
    ok: u64,
    rejected: u64,
    samples: Vec<Duration>,
}

fn merge(mode: &'static str, clients: usize, wall_s: f64, tallies: Vec<ClientTally>) -> LoadReport {
    let mut samples = Vec::new();
    let (mut sent, mut ok, mut rejected) = (0u64, 0u64, 0u64);
    for mut t in tallies {
        sent += t.sent;
        ok += t.ok;
        rejected += t.rejected;
        samples.append(&mut t.samples);
    }
    LoadReport {
        mode,
        clients,
        wall_s,
        sent,
        ok,
        rejected,
        images_per_s: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        latency: LatencySummary::from_samples(&samples),
    }
}

fn record(tally: &mut ClientTally, result: &Result<crate::Prediction, ServeError>, lat: Duration) {
    tally.sent += 1;
    match result {
        Ok(_) => {
            tally.ok += 1;
            tally.samples.push(lat);
        }
        Err(ServeError::Overloaded { .. }) => tally.rejected += 1,
        // ShuttingDown / BadRequest: counted as sent but neither served
        // nor shed; load runs against a live server should not see them.
        Err(_) => {}
    }
}

/// Packs every image once, up front, so the measured loop submits
/// pre-packed requests through the zero-copy path — the generator
/// allocates nothing per request, mirroring a real packed client.
fn pack_images(handle: &ServeHandle, images: &[Vec<Vec<bool>>]) -> Vec<PackedRequest> {
    let width = handle.input_width();
    images
        .iter()
        .map(|img| PackedRequest::from_bool_frames(width, img))
        .collect()
}

/// Runs `clients` back-to-back submitter threads for `duration`, cycling
/// through `images` (each an image's frame sequence). Each client packs
/// its own copy of the image set before the clock starts and then
/// submits via [`ServeHandle::predict_packed`].
///
/// # Panics
///
/// Panics if `images` is empty, `clients` is zero, or an image's frame
/// width does not match the network.
pub fn closed_loop(
    handle: &ServeHandle,
    images: &[Vec<Vec<bool>>],
    clients: usize,
    duration: Duration,
) -> LoadReport {
    assert!(!images.is_empty(), "need at least one image");
    assert!(clients > 0, "need at least one client");
    let start = Instant::now();
    let deadline = start + duration;
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut requests = pack_images(handle, images);
                    let mut tally = ClientTally::default();
                    let mut at = c; // stagger image cycling across clients
                    while Instant::now() < deadline {
                        let idx = at % requests.len();
                        at += clients;
                        let sent_at = Instant::now();
                        let result = handle.predict_packed(&mut requests[idx]);
                        record(&mut tally, &result, sent_at.elapsed());
                    }
                    tally
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("load client panicked"))
            .collect()
    });
    merge("closed", clients, start.elapsed().as_secs_f64(), tallies)
}

/// Submits requests on an absolute schedule at `rate_per_s` for
/// `duration`, spread over `senders` threads (thread `s` owns arrivals
/// `s, s + senders, ...`). Latency is measured from each request's
/// scheduled arrival, so a backlogged server is charged its queueing
/// delay.
///
/// # Panics
///
/// Panics if `images` is empty, `senders` is zero, `rate_per_s` is not
/// positive, or an image's frame width does not match the network.
pub fn open_loop(
    handle: &ServeHandle,
    images: &[Vec<Vec<bool>>],
    rate_per_s: f64,
    duration: Duration,
    senders: usize,
) -> LoadReport {
    assert!(!images.is_empty(), "need at least one image");
    assert!(senders > 0, "need at least one sender");
    assert!(rate_per_s > 0.0, "need a positive rate");
    let total = (rate_per_s * duration.as_secs_f64()).floor() as usize;
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..senders)
            .map(|s| {
                scope.spawn(move || {
                    let mut requests = pack_images(handle, images);
                    let mut tally = ClientTally::default();
                    let mut k = s;
                    while k < total {
                        let due = start + Duration::from_secs_f64(k as f64 / rate_per_s);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let idx = k % requests.len();
                        let result = handle.predict_packed(&mut requests[idx]);
                        record(&mut tally, &result, due.elapsed());
                        k += senders;
                    }
                    tally
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("load sender panicked"))
            .collect()
    });
    merge("open", senders, start.elapsed().as_secs_f64(), tallies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_are_order_statistics() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_handles_empty_and_single() {
        let empty = LatencySummary::from_samples(&[]);
        assert_eq!(empty.p99_us, 0.0);
        let one = LatencySummary::from_samples(&[Duration::from_micros(7)]);
        assert_eq!(one.p50_us, 7.0);
        assert_eq!(one.p99_us, 7.0);
    }

    /// Percentiles are monotone (p50 <= p95 <= p99 <= max) and the mean
    /// stays inside [min, max] for every sample-set size, including the
    /// degenerate 1- and 2-sample runs where the index arithmetic in
    /// `from_samples` is most easily off by one.
    #[test]
    fn latency_summary_percentiles_are_monotone_for_all_sizes() {
        let two =
            LatencySummary::from_samples(&[Duration::from_micros(30), Duration::from_micros(10)]);
        // ceil(2 * 0.50) = 1 -> first order statistic; the upper tail is
        // the larger sample.
        assert_eq!(two.p50_us, 10.0);
        assert_eq!(two.p95_us, 30.0);
        assert_eq!(two.p99_us, 30.0);
        assert_eq!(two.max_us, 30.0);
        assert_eq!(two.mean_us, 20.0);

        // Deterministic pseudo-random sweep over sizes 1..=64.
        let mut state = 0x5EED_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for len in 1usize..=64 {
            let samples: Vec<Duration> = (0..len)
                .map(|_| Duration::from_nanos(next() % 5_000_000))
                .collect();
            let s = LatencySummary::from_samples(&samples);
            let min = samples.iter().min().unwrap().as_secs_f64() * 1e6;
            assert!(
                min <= s.p50_us
                    && s.p50_us <= s.p95_us
                    && s.p95_us <= s.p99_us
                    && s.p99_us <= s.max_us,
                "percentiles not monotone at len={len}: {s:?}"
            );
            assert!(
                min <= s.mean_us && s.mean_us <= s.max_us,
                "mean outside range at len={len}: {s:?}"
            );
        }
    }
}
