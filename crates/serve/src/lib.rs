//! # sushi-serve — long-running SSNN inference service
//!
//! The offline pipeline (`sushi-ssnn`) answers "how fast can we classify
//! a dataset we already hold?". This crate answers the serving question:
//! many concurrent clients each submit *one* image and wait for its
//! class. Serving them one-by-one wastes the batch engine; queueing them
//! without bound wastes the clients. `sushi-serve` sits in between:
//!
//! * **Dynamic micro-batching** — admitted requests are coalesced into a
//!   batch dispatched when either `max_batch` requests are waiting
//!   (size trigger) or the oldest has waited `max_delay` (deadline
//!   trigger), then fed to [`sushi_ssnn::PackedSnn::predict_batch`].
//!   Served predictions are bitwise identical to offline inference.
//! * **Admission control / backpressure** — the request queue is bounded
//!   (`queue_capacity`); a request arriving at a full queue is shed
//!   immediately with a structured [`ServeError::Overloaded`] instead of
//!   silently inflating everyone's latency.
//! * **Front ends** — an in-process [`ServeHandle`] for harness use, and
//!   a Unix-domain-socket front end ([`socket`]) with a tiny length-free
//!   binary protocol for out-of-process clients.
//! * **Load generation** — [`loadgen`] drives a server closed-loop
//!   (fixed clients, back-to-back) or open-loop (fixed arrival rate,
//!   latency measured from *scheduled* arrival so coordinated omission
//!   does not hide queueing) and reports p50/p95/p99 latency and
//!   sustained images/s.
//!
//! ## Quick start
//!
//! ```
//! use sushi_serve::{ServeConfig, Server};
//! use sushi_ssnn::{PackedLayer, PackedSnn};
//!
//! // A toy 4-input, 2-class network; real callers pack a trained net.
//! let layer = PackedLayer::from_parts(&[1; 8], 4, 2, &[0, 0]);
//! let snn = PackedSnn::from_layers(vec![layer]);
//!
//! let server = Server::start(snn, ServeConfig::new().max_batch(8).workers(1));
//! let handle = server.handle();
//! let prediction = handle.predict(vec![vec![true, false, true, false]]).unwrap();
//! assert!(prediction.class < 2);
//! ```

#![warn(missing_docs)]

mod config;
pub mod loadgen;
mod server;
#[cfg(unix)]
pub mod socket;

pub use config::ServeConfig;
pub use server::{Prediction, ServeError, ServeHandle, Server, ServerStats};
