//! # sushi-serve — long-running SSNN inference service
//!
//! The offline pipeline (`sushi-ssnn`) answers "how fast can we classify
//! a dataset we already hold?". This crate answers the serving question:
//! many concurrent clients each submit *one* image and wait for its
//! class. Serving them one-by-one wastes the batch engine; queueing them
//! without bound wastes the clients. `sushi-serve` sits in between:
//!
//! * **Zero-copy request path** — requests travel as [`PackedRequest`]
//!   (bit-packed `u64` spike words, the engine's native representation)
//!   from the edge to the engine. The socket front end decodes wire
//!   bytes straight into packed words, the in-process handle packs
//!   bools once at the edge (or lends an already-packed buffer via
//!   [`ServeHandle::predict_packed`]), and payloads move through the
//!   pipeline by `mem::swap` — the steady state allocates nothing per
//!   request.
//! * **Dynamic micro-batching, sharded** — admission lands on one of
//!   `shards` independent queues drained by `executors` threads with
//!   long-lived scratch. A batch dispatches when either `max_batch`
//!   requests wait on a shard (size trigger) or its oldest has waited
//!   `max_delay` (deadline trigger); executors steal ripe batches from
//!   sibling shards. Served predictions are bitwise identical to
//!   offline [`sushi_ssnn::PackedSnn::predict_batch`] for every shard
//!   and executor count.
//! * **Admission control / backpressure** — total queued requests are
//!   bounded (`queue_capacity`, tracked by a lock-free gauge); a
//!   request arriving over the bound is shed immediately with a
//!   structured [`ServeError::Overloaded`] instead of silently
//!   inflating everyone's latency.
//! * **Front ends** — an in-process [`ServeHandle`] for harness use, and
//!   a Unix-domain-socket front end ([`socket`]) with a tiny length-free
//!   binary protocol for out-of-process clients.
//! * **Load generation** — [`loadgen`] drives a server closed-loop
//!   (fixed clients, back-to-back) or open-loop (fixed arrival rate,
//!   latency measured from *scheduled* arrival so coordinated omission
//!   does not hide queueing) and reports p50/p95/p99 latency and
//!   sustained images/s.
//!
//! ## Quick start
//!
//! ```
//! use sushi_serve::{ServeConfig, Server};
//! use sushi_ssnn::{PackedLayer, PackedSnn};
//!
//! // A toy 4-input, 2-class network; real callers pack a trained net.
//! let layer = PackedLayer::from_parts(&[1; 8], 4, 2, &[0, 0]);
//! let snn = PackedSnn::from_layers(vec![layer]);
//!
//! let server = Server::start(snn, ServeConfig::new().max_batch(8).executors(1));
//! let handle = server.handle();
//! let prediction = handle.predict(vec![vec![true, false, true, false]]).unwrap();
//! assert!(prediction.class < 2);
//! ```

#![warn(missing_docs)]

mod config;
pub mod loadgen;
mod server;
#[cfg(unix)]
pub mod socket;

pub use config::ServeConfig;
pub use server::{PackedRequest, Prediction, ServeError, ServeHandle, Server, ServerStats};
