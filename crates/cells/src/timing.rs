//! Minimum pulse-separation constraints (Table 1 of the paper).
//!
//! In asynchronous RSFQ operation the only timing rule is a minimum interval
//! between pulses arriving at particular port pairs of a cell: "A-B is the
//! time (ps) that the B channel input must lag behind the A channel input".
//! The constraint tables here are consumed by the `sushi-sim` runtime checker
//! and by the `sushi-ssnn` pulse-stream encoder (which must *generate*
//! streams that respect them).

use crate::{CellKind, PortName, Ps};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One minimum-separation rule: a pulse on `second` must arrive at least
/// `min_ps` after the most recent pulse on `first`.
///
/// A rule with `first == second` is a minimum inter-pulse interval on a
/// single port (e.g. `din-din 19.9` for a JTL).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// The earlier pulse's port.
    pub first: PortName,
    /// The later pulse's port.
    pub second: PortName,
    /// Minimum separation in picoseconds.
    pub min_ps: Ps,
}

impl Constraint {
    /// Creates a rule that `second` must lag `first` by at least `min_ps`.
    pub fn new(first: PortName, second: PortName, min_ps: Ps) -> Self {
        Self {
            first,
            second,
            min_ps,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{} {:.2}ps", self.first, self.second, self.min_ps)
    }
}

/// The set of separation rules for one cell kind.
///
/// # Examples
///
/// ```
/// use sushi_cells::{CellKind, ConstraintTable, PortName};
///
/// let t = ConstraintTable::paper_table1(CellKind::Dff);
/// assert_eq!(t.min_separation(PortName::Din, PortName::Clk), Some(8.53));
/// assert_eq!(t.min_separation(PortName::Clk, PortName::Rst), None);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConstraintTable {
    rules: Vec<Constraint>,
    /// Rule indices grouped by the arriving (`second`) port, so the
    /// simulator hot path only inspects rules that can fire for a given
    /// pulse. Either empty (no rules) or [`PortName::COUNT`] entries;
    /// rebuilt on every mutation.
    by_second: Vec<Vec<u32>>,
}

impl PartialEq for ConstraintTable {
    fn eq(&self, other: &Self) -> bool {
        // by_second is derived from rules; comparing it would be redundant.
        self.rules == other.rules
    }
}

impl ConstraintTable {
    /// An empty table (no constraints).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the constraint table for `kind` exactly as published in
    /// Table 1 of the paper.
    ///
    /// Cells not listed in Table 1 (splitter variants, converters) inherit
    /// the generic 19.9 ps per-input interval that the paper applies to
    /// JTL/SPL wiring cells.
    pub fn paper_table1(kind: CellKind) -> Self {
        use PortName::*;
        let rules = match kind {
            // "CB dinA/B-dinA/B 19.9, dinA/B-dinB/A 5.7"
            CellKind::Cb2 => vec![
                Constraint::new(DinA, DinA, 19.9),
                Constraint::new(DinB, DinB, 19.9),
                Constraint::new(DinA, DinB, 5.7),
                Constraint::new(DinB, DinA, 5.7),
            ],
            CellKind::Cb3 => vec![
                Constraint::new(DinA, DinA, 19.9),
                Constraint::new(DinB, DinB, 19.9),
                Constraint::new(DinC, DinC, 19.9),
                Constraint::new(DinA, DinB, 5.7),
                Constraint::new(DinB, DinA, 5.7),
                Constraint::new(DinA, DinC, 5.7),
                Constraint::new(DinC, DinA, 5.7),
                Constraint::new(DinB, DinC, 5.7),
                Constraint::new(DinC, DinB, 5.7),
            ],
            // "SPL din-din 19.9"
            CellKind::Spl2 | CellKind::Spl3 => vec![Constraint::new(Din, Din, 19.9)],
            // "DFF din-din 19.9, din-clk 8.53, clk-clk 19.9"
            CellKind::Dff => vec![
                Constraint::new(Din, Din, 19.9),
                Constraint::new(Din, Clk, 8.53),
                Constraint::new(Clk, Clk, 19.9),
            ],
            // "NDRO din/rst-rst/din 39.9, clk-clk 39.9, din-clk 14.81, rst-clk 16.61"
            CellKind::Ndro => vec![
                Constraint::new(Din, Rst, 39.9),
                Constraint::new(Rst, Din, 39.9),
                Constraint::new(Din, Din, 39.9),
                Constraint::new(Rst, Rst, 39.9),
                Constraint::new(Clk, Clk, 39.9),
                Constraint::new(Din, Clk, 14.81),
                Constraint::new(Rst, Clk, 16.61),
            ],
            // "TFF clk-clk 39.9" — the TFF's single input acts as its clock.
            CellKind::Tffl | CellKind::Tffr => vec![Constraint::new(Din, Din, 39.9)],
            // "JTL din-din 19.9"
            CellKind::Jtl => vec![Constraint::new(Din, Din, 19.9)],
            // Converters: generic wiring-cell interval.
            CellKind::DcSfq | CellKind::SfqDc => vec![Constraint::new(Din, Din, 19.9)],
        };
        Self::from_rules(rules)
    }

    /// Builds a table from explicit rules.
    pub fn from_rules(rules: Vec<Constraint>) -> Self {
        let mut t = Self {
            rules,
            by_second: Vec::new(),
        };
        t.rebuild_index();
        t
    }

    fn rebuild_index(&mut self) {
        self.by_second = vec![Vec::new(); PortName::COUNT];
        for (i, r) in self.rules.iter().enumerate() {
            self.by_second[r.second.index()].push(i as u32);
        }
    }

    /// Adds a rule to the table (builder style).
    pub fn with_rule(mut self, rule: Constraint) -> Self {
        self.rules.push(rule);
        self.rebuild_index();
        self
    }

    /// All rules of this table.
    pub fn rules(&self) -> &[Constraint] {
        &self.rules
    }

    /// The minimum lag required from a pulse on `first` to a later pulse on
    /// `second`, or `None` if the pair is unconstrained.
    pub fn min_separation(&self, first: PortName, second: PortName) -> Option<Ps> {
        self.rules
            .iter()
            .filter(|r| r.first == first && r.second == second)
            .map(|r| r.min_ps)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: Ps| a.max(v))))
    }

    /// Checks a pulse arriving on `port` at time `t` against the most recent
    /// arrival times per port; returns every violated rule.
    ///
    /// `last_arrivals` yields `(port, last_time)` pairs; ports without prior
    /// pulses are simply omitted (if a port repeats, its last time wins).
    pub fn check<I>(&self, port: PortName, t: Ps, last_arrivals: I) -> Vec<&Constraint>
    where
        I: IntoIterator<Item = (PortName, Ps)>,
    {
        let mut dense = [Ps::NEG_INFINITY; PortName::COUNT];
        for (prev_port, prev_t) in last_arrivals {
            dense[prev_port.index()] = prev_t;
        }
        let mut violated = Vec::new();
        self.check_dense(port, t, &dense, |rule, _| violated.push(rule));
        violated
    }

    /// Streaming constraint check against a dense per-port arrival table
    /// (the simulator hot path).
    ///
    /// `last_arrival` holds the most recent pulse time per port, indexed by
    /// [`PortName::index`], with [`Ps::NEG_INFINITY`] meaning "never". Only
    /// rules whose `second` port is `port` are inspected; `hit` receives
    /// each violated rule together with the prior arrival time that broke
    /// it.
    #[inline]
    pub fn check_dense<'a, F>(
        &'a self,
        port: PortName,
        t: Ps,
        last_arrival: &[Ps; PortName::COUNT],
        mut hit: F,
    ) where
        F: FnMut(&'a Constraint, Ps),
    {
        let Some(indices) = self.by_second.get(port.index()) else {
            return;
        };
        for &ri in indices {
            let rule = &self.rules[ri as usize];
            let prev = last_arrival[rule.first.index()];
            if t - prev < rule.min_ps {
                hit(rule, prev);
            }
        }
    }

    /// The largest `min_ps` over all rules, used as a conservative
    /// "safe interval" when encoding pulse streams.
    pub fn worst_case_ps(&self) -> Ps {
        self.rules.iter().map(|r| r.min_ps).fold(0.0, Ps::max)
    }

    /// A copy with every separation scaled by `factor` (process scaling:
    /// faster junctions shrink the required intervals).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn scaled(&self, factor: Ps) -> ConstraintTable {
        assert!(factor > 0.0, "scale factor must be positive");
        ConstraintTable::from_rules(
            self.rules
                .iter()
                .map(|r| Constraint::new(r.first, r.second, r.min_ps * factor))
                .collect(),
        )
    }
}

/// A conservative chip-wide safe inter-pulse interval.
///
/// The paper: "we employ larger interval constraints to ensure the correct
/// operation of the cells". 40 ps clears every rule in Table 1 (the worst is
/// the NDRO at 39.9 ps).
pub const SAFE_INTERVAL_PS: Ps = 40.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        use PortName::*;
        let cb = ConstraintTable::paper_table1(CellKind::Cb2);
        assert_eq!(cb.min_separation(DinA, DinA), Some(19.9));
        assert_eq!(cb.min_separation(DinA, DinB), Some(5.7));

        let dff = ConstraintTable::paper_table1(CellKind::Dff);
        assert_eq!(dff.min_separation(Din, Clk), Some(8.53));
        assert_eq!(dff.min_separation(Clk, Clk), Some(19.9));

        let ndro = ConstraintTable::paper_table1(CellKind::Ndro);
        assert_eq!(ndro.min_separation(Din, Rst), Some(39.9));
        assert_eq!(ndro.min_separation(Rst, Din), Some(39.9));
        assert_eq!(ndro.min_separation(Clk, Clk), Some(39.9));
        assert_eq!(ndro.min_separation(Din, Clk), Some(14.81));
        assert_eq!(ndro.min_separation(Rst, Clk), Some(16.61));

        let tff = ConstraintTable::paper_table1(CellKind::Tffl);
        assert_eq!(tff.min_separation(Din, Din), Some(39.9));

        let jtl = ConstraintTable::paper_table1(CellKind::Jtl);
        assert_eq!(jtl.min_separation(Din, Din), Some(19.9));
    }

    #[test]
    fn unconstrained_pairs_return_none() {
        let dff = ConstraintTable::paper_table1(CellKind::Dff);
        assert_eq!(dff.min_separation(PortName::Clk, PortName::Din), None);
    }

    #[test]
    fn check_flags_violation() {
        let jtl = ConstraintTable::paper_table1(CellKind::Jtl);
        // Second pulse only 10 ps after the first: violates 19.9 ps.
        let v = jtl.check(PortName::Din, 110.0, [(PortName::Din, 100.0)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].min_ps, 19.9);
    }

    #[test]
    fn check_passes_when_separated() {
        let jtl = ConstraintTable::paper_table1(CellKind::Jtl);
        let v = jtl.check(PortName::Din, 120.0, [(PortName::Din, 100.0)]);
        assert!(v.is_empty());
    }

    #[test]
    fn check_considers_all_prior_ports() {
        let ndro = ConstraintTable::paper_table1(CellKind::Ndro);
        // clk at t=50 after din at t=40 (needs 14.81) and rst at t=45 (needs 16.61).
        let v = ndro.check(
            PortName::Clk,
            50.0,
            [(PortName::Din, 40.0), (PortName::Rst, 45.0)],
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn dense_check_matches_sparse_check() {
        for kind in CellKind::ALL {
            let table = ConstraintTable::paper_table1(kind);
            // Arrivals staggered tightly enough that some rule must trip.
            let arrivals: Vec<(PortName, Ps)> = kind
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, 100.0 + i as Ps))
                .collect();
            let mut dense = [Ps::NEG_INFINITY; PortName::COUNT];
            for &(p, t) in &arrivals {
                dense[p.index()] = t;
            }
            for &port in kind.inputs() {
                let sparse = table.check(port, 104.0, arrivals.iter().copied());
                let mut streamed = Vec::new();
                table.check_dense(port, 104.0, &dense, |r, _| streamed.push(r));
                assert_eq!(sparse, streamed, "{kind} {port}");
                assert!(!sparse.is_empty(), "{kind} {port} should trip at 4ps lag");
            }
        }
    }

    #[test]
    fn dense_check_reports_breaking_arrival_time() {
        let ndro = ConstraintTable::paper_table1(CellKind::Ndro);
        let mut dense = [Ps::NEG_INFINITY; PortName::COUNT];
        dense[PortName::Din.index()] = 40.0;
        dense[PortName::Rst.index()] = 45.0;
        let mut hits = Vec::new();
        ndro.check_dense(PortName::Clk, 50.0, &dense, |r, prev| {
            hits.push((r.first, prev))
        });
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        assert_eq!(hits, vec![(PortName::Din, 40.0), (PortName::Rst, 45.0)]);
    }

    #[test]
    fn empty_table_dense_check_is_silent() {
        let t = ConstraintTable::new();
        let dense = [0.0; PortName::COUNT];
        let mut hits = 0;
        t.check_dense(PortName::Din, 0.0, &dense, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn safe_interval_clears_every_rule() {
        for kind in CellKind::ALL {
            let t = ConstraintTable::paper_table1(kind);
            assert!(
                t.worst_case_ps() <= SAFE_INTERVAL_PS,
                "{kind}: worst case {} exceeds safe interval",
                t.worst_case_ps()
            );
        }
    }

    #[test]
    fn with_rule_extends_table() {
        let t = ConstraintTable::new()
            .with_rule(Constraint::new(PortName::Din, PortName::Din, 10.0))
            .with_rule(Constraint::new(PortName::Din, PortName::Din, 25.0));
        // min_separation takes the most restrictive rule.
        assert_eq!(t.min_separation(PortName::Din, PortName::Din), Some(25.0));
        assert_eq!(t.rules().len(), 2);
    }

    #[test]
    fn display_formats_rule() {
        let c = Constraint::new(PortName::Din, PortName::Clk, 8.53);
        assert_eq!(c.to_string(), "din-clk 8.53ps");
    }
}
