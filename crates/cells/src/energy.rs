//! Chip-level power model primitives.
//!
//! RSFQ power has two components: a *static* bias-current term proportional
//! to the number of junctions (dominant) and a *dynamic* switching term of
//! roughly `I_c * Phi_0` per JJ flip (tiny). The paper evaluates power
//! "without considering the cooling costs"; we do the same, but expose the
//! cooling multiplier for completeness.

use crate::CellLibrary;
use serde::{Deserialize, Serialize};

/// Carnot-limited specific power of a 4.2 K cryocooler relative to the
/// dissipated chip power (W of wall power per W at 4.2 K). Real systems are
/// ~1000x; the paper (like most RSFQ papers) excludes this.
pub const COOLING_OVERHEAD_FACTOR: f64 = 1000.0;

/// A chip-level power estimate.
///
/// # Examples
///
/// ```
/// use sushi_cells::{CellLibrary, PowerModel};
///
/// let lib = CellLibrary::nb03();
/// let p = PowerModel::new(&lib).estimate(100_000, 1.0e12, 50.0);
/// assert!(p.total_mw() > p.dynamic_mw);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Static bias power in mW (including fixed chip overhead).
    pub static_mw: f64,
    /// Dynamic switching power in mW.
    pub dynamic_mw: f64,
}

impl PowerEstimate {
    /// Total chip power in mW, excluding cooling (as in the paper).
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }

    /// Total wall power in mW if the 4.2 K cooling overhead were included.
    pub fn total_with_cooling_mw(&self) -> f64 {
        self.total_mw() * COOLING_OVERHEAD_FACTOR
    }
}

/// Computes [`PowerEstimate`]s from a [`CellLibrary`]'s constants.
#[derive(Debug, Clone)]
pub struct PowerModel<'a> {
    library: &'a CellLibrary,
}

impl<'a> PowerModel<'a> {
    /// Creates a power model over `library`.
    pub fn new(library: &'a CellLibrary) -> Self {
        Self { library }
    }

    /// Estimates power for a design with `jj_count` junctions switching
    /// `events_per_s` times per second, each event flipping on average
    /// `jj_per_event` junctions.
    pub fn estimate(&self, jj_count: u64, events_per_s: f64, jj_per_event: f64) -> PowerEstimate {
        PowerEstimate {
            static_mw: self.library.static_power_mw(jj_count),
            dynamic_mw: self.library.dynamic_power_mw(events_per_s, jj_per_event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_dominates_dynamic() {
        let lib = CellLibrary::nb03();
        let p = PowerModel::new(&lib).estimate(99_982, 1.355e12, 50.0);
        assert!(p.static_mw > 100.0 * p.dynamic_mw);
        // Near the paper's 41.87 mW.
        assert!((p.total_mw() - 41.87).abs() < 0.5, "total {}", p.total_mw());
    }

    #[test]
    fn cooling_overhead_is_multiplicative() {
        let lib = CellLibrary::nb03();
        let p = PowerModel::new(&lib).estimate(10_000, 0.0, 0.0);
        assert!((p.total_with_cooling_mw() - p.total_mw() * COOLING_OVERHEAD_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn zero_activity_means_zero_dynamic() {
        let lib = CellLibrary::nb03();
        let p = PowerModel::new(&lib).estimate(10_000, 0.0, 50.0);
        assert_eq!(p.dynamic_mw, 0.0);
        assert!(p.static_mw > 0.0);
    }
}
