//! The complete cell library: parameters + constraints + routing constants.

use crate::params::{FIXED_CHIP_POWER_MW, SWITCH_AJ_PER_JJ};
use crate::{CellKind, CellParams, ConstraintTable, Ps};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Chip-level routing constants used by the architecture generator's
/// floorplan/wiring model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingParams {
    /// Span of one JTL repeater stage along a route, in µm. The number of
    /// wiring JTLs on a route of length L is `ceil(L / jtl_pitch_um)`.
    pub jtl_pitch_um: f64,
    /// Signal propagation delay per mm of routed JTL wiring, in ps.
    pub wire_delay_ps_per_mm: Ps,
    /// Extra JJs consumed by one transmission-line crossing (the paper:
    /// "the transmission line crossing overhead is high — twice the width
    /// of the original transmission line").
    pub crossing_jj: u32,
    /// Placement pitch of one NPE tile in mm (sets route lengths).
    pub npe_pitch_mm: f64,
    /// Area overhead factor for routing tracks relative to summed cell area.
    pub track_area_factor: f64,
}

impl RoutingParams {
    /// Nb03-like defaults, calibrated against Table 2 / Fig. 13 aggregates.
    pub fn nb03() -> Self {
        Self {
            jtl_pitch_um: 30.0,
            wire_delay_ps_per_mm: 10.4,
            crossing_jj: 4,
            npe_pitch_mm: 0.62,
            track_area_factor: 1.0,
        }
    }

    /// Number of wiring JTL stages needed to cover `len_mm` of route.
    pub fn jtls_for_route(&self, len_mm: f64) -> u64 {
        if len_mm <= 0.0 {
            return 0;
        }
        ((len_mm * 1000.0) / self.jtl_pitch_um).ceil() as u64
    }

    /// Propagation delay of `len_mm` of routed wiring, in ps.
    pub fn wire_delay_ps(&self, len_mm: f64) -> Ps {
        len_mm.max(0.0) * self.wire_delay_ps_per_mm
    }
}

impl Default for RoutingParams {
    fn default() -> Self {
        Self::nb03()
    }
}

/// A complete RSFQ cell library: per-cell parameters, per-cell timing
/// constraints, and chip-level routing/power constants.
///
/// # Examples
///
/// ```
/// use sushi_cells::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::nb03();
/// assert_eq!(lib.name(), "SIMIT-Nb03-like");
/// let total_jj = lib.params(CellKind::Ndro).jj_count + lib.params(CellKind::Tffl).jj_count;
/// assert!(total_jj > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    params: BTreeMap<CellKind, CellParams>,
    constraints: BTreeMap<CellKind, ConstraintTable>,
    routing: RoutingParams,
    /// Fixed chip-level power in mW (bias distribution, IO).
    fixed_power_mw: f64,
}

impl CellLibrary {
    /// The default SIMIT-Nb03-like library used throughout the reproduction.
    pub fn nb03() -> Self {
        let mut params = BTreeMap::new();
        let mut constraints = BTreeMap::new();
        for kind in CellKind::ALL {
            params.insert(kind, CellParams::nb03(kind));
            constraints.insert(kind, ConstraintTable::paper_table1(kind));
        }
        Self {
            name: "SIMIT-Nb03-like".to_owned(),
            params,
            constraints,
            routing: RoutingParams::nb03(),
            fixed_power_mw: FIXED_CHIP_POWER_MW,
        }
    }

    /// An advanced-process library (MIT-LL SFQ5ee-like, 350 nm, high
    /// critical-current density): ~3x faster cells, ~8x denser layout,
    /// halved bias power and proportionally tighter timing constraints.
    /// Used by the process-scaling ablation — the paper notes the design
    /// is "compressible or expandable based on the level of
    /// superconducting circuit technology".
    pub fn advanced() -> Self {
        let base = Self::nb03();
        let mut params = BTreeMap::new();
        let mut constraints = BTreeMap::new();
        for kind in CellKind::ALL {
            params.insert(kind, base.params(kind).scaled(1.0 / 3.0, 1.0 / 8.0, 0.5));
            constraints.insert(kind, base.constraints(kind).scaled(1.0 / 3.0));
        }
        Self {
            name: "SFQ5ee-like".to_owned(),
            params,
            constraints,
            routing: RoutingParams {
                jtl_pitch_um: 12.0,
                wire_delay_ps_per_mm: 8.0,
                crossing_jj: 4,
                npe_pitch_mm: 0.22,
                track_area_factor: 1.0,
            },
            fixed_power_mw: FIXED_CHIP_POWER_MW / 2.0,
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameters of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the library was built without an entry for `kind`
    /// (impossible for [`CellLibrary::nb03`]).
    pub fn params(&self, kind: CellKind) -> &CellParams {
        self.params
            .get(&kind)
            .unwrap_or_else(|| panic!("cell library {} has no params for {kind}", self.name))
    }

    /// Timing constraints of `kind`.
    pub fn constraints(&self, kind: CellKind) -> &ConstraintTable {
        self.constraints
            .get(&kind)
            .unwrap_or_else(|| panic!("cell library {} has no constraints for {kind}", self.name))
    }

    /// Chip-level routing constants.
    pub fn routing(&self) -> &RoutingParams {
        &self.routing
    }

    /// Fixed chip-level power in mW.
    pub fn fixed_power_mw(&self) -> f64 {
        self.fixed_power_mw
    }

    /// Replaces the parameters of one cell kind (builder style, for process
    /// exploration).
    pub fn with_params(mut self, kind: CellKind, p: CellParams) -> Self {
        self.params.insert(kind, p);
        self
    }

    /// Replaces the routing constants (builder style).
    pub fn with_routing(mut self, routing: RoutingParams) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the fixed chip-level power (builder style).
    pub fn with_fixed_power_mw(mut self, mw: f64) -> Self {
        self.fixed_power_mw = mw;
        self
    }

    /// Static power in mW of a design containing `jj_count` junctions,
    /// including the fixed chip overhead. Uses the library's JTL bias as
    /// the per-JJ constant (uniform across cells by construction).
    pub fn static_power_mw(&self, jj_count: u64) -> f64 {
        let jtl = self.params(CellKind::Jtl);
        let per_jj_nw = jtl.bias_power_nw / f64::from(jtl.jj_count);
        self.fixed_power_mw + jj_count as f64 * per_jj_nw * 1e-6
    }

    /// Dynamic power in mW of `events_per_s` switching events per second,
    /// each flipping on average `jj_per_event` junctions.
    pub fn dynamic_power_mw(&self, events_per_s: f64, jj_per_event: f64) -> f64 {
        events_per_s * jj_per_event * SWITCH_AJ_PER_JJ * 1e-18 * 1e3
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::nb03()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortName;

    #[test]
    fn nb03_covers_every_kind() {
        let lib = CellLibrary::nb03();
        for kind in CellKind::ALL {
            let p = lib.params(kind);
            assert!(p.jj_count > 0, "{kind}");
            let _ = lib.constraints(kind);
        }
    }

    #[test]
    fn static_power_includes_fixed_overhead() {
        let lib = CellLibrary::nb03();
        let p0 = lib.static_power_mw(0);
        assert!((p0 - FIXED_CHIP_POWER_MW).abs() < 1e-12);
        // Peak design calibration: ~99,982 JJs -> ~41.9 mW (paper: 41.87).
        let p = lib.static_power_mw(99_982);
        assert!((p - 41.87).abs() < 0.5, "got {p}");
    }

    #[test]
    fn dynamic_power_is_negligible_vs_static() {
        let lib = CellLibrary::nb03();
        // 1355 GSOPS with ~50 JJ flips per synaptic op.
        let dyn_mw = lib.dynamic_power_mw(1.355e12, 50.0);
        assert!(dyn_mw < 0.1, "dynamic {dyn_mw} mW should be tiny");
        assert!(dyn_mw > 0.0);
    }

    #[test]
    fn routing_jtl_count_rounds_up() {
        let r = RoutingParams::nb03();
        assert_eq!(r.jtls_for_route(0.0), 0);
        assert_eq!(r.jtls_for_route(-1.0), 0);
        // 0.031 mm = 31 µm needs 2 stages at 30 µm pitch.
        assert_eq!(r.jtls_for_route(0.031), 2);
        assert_eq!(r.jtls_for_route(0.030), 1);
    }

    #[test]
    fn routing_delay_linear_in_length() {
        let r = RoutingParams::nb03();
        let d1 = r.wire_delay_ps(1.0);
        let d2 = r.wire_delay_ps(2.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
        assert_eq!(r.wire_delay_ps(-5.0), 0.0);
    }

    #[test]
    fn builder_overrides_apply() {
        let lib = CellLibrary::nb03()
            .with_fixed_power_mw(0.0)
            .with_params(CellKind::Jtl, CellParams::from_jj_count(4, 9.0));
        assert_eq!(lib.params(CellKind::Jtl).jj_count, 4);
        assert!((lib.static_power_mw(0)).abs() < 1e-12);
    }

    #[test]
    fn advanced_process_is_faster_denser_cooler() {
        let nb = CellLibrary::nb03();
        let adv = CellLibrary::advanced();
        for kind in CellKind::ALL {
            assert!(
                adv.params(kind).delay_ps < nb.params(kind).delay_ps,
                "{kind}"
            );
            assert!(
                adv.params(kind).area_um2 < nb.params(kind).area_um2,
                "{kind}"
            );
            assert!(
                adv.params(kind).bias_power_nw < nb.params(kind).bias_power_nw,
                "{kind}"
            );
            assert_eq!(
                adv.params(kind).jj_count,
                nb.params(kind).jj_count,
                "{kind}"
            );
        }
        // Constraints scale with speed.
        let nb_worst = nb.constraints(CellKind::Ndro).worst_case_ps();
        let adv_worst = adv.constraints(CellKind::Ndro).worst_case_ps();
        assert!((adv_worst - nb_worst / 3.0).abs() < 1e-9);
        assert!(adv.static_power_mw(100_000) < nb.static_power_mw(100_000));
    }

    #[test]
    fn constraints_match_table1() {
        let lib = CellLibrary::nb03();
        assert_eq!(
            lib.constraints(CellKind::Ndro)
                .min_separation(PortName::Din, PortName::Clk),
            Some(14.81)
        );
    }
}
