//! Per-cell resource and electrical parameters.
//!
//! The reproduction cannot use the proprietary SIMIT-Nb03 library data
//! directly; the default values in [`CellParams::nb03`] are drawn from the
//! public RSFQ literature for a 2 µm niobium process and then calibrated so
//! that the *aggregate* numbers of the paper (Table 2, Fig. 13, Fig. 20,
//! Table 4) are reproduced by the architecture generator. See DESIGN.md.

use crate::{CellKind, Ps};
use serde::{Deserialize, Serialize};

/// Resource and electrical parameters of one standard cell.
///
/// # Examples
///
/// ```
/// use sushi_cells::{CellKind, CellParams};
///
/// let jtl = CellParams::nb03(CellKind::Jtl);
/// assert_eq!(jtl.jj_count, 2);
/// assert!(jtl.delay_ps > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Number of Josephson junctions in the cell.
    pub jj_count: u32,
    /// Placed cell area in µm² (includes bias resistors and moats).
    pub area_um2: f64,
    /// Input-to-output propagation delay in ps.
    pub delay_ps: Ps,
    /// Static bias-current power draw in nW (RSFQ power is dominated by the
    /// DC bias network, not by switching).
    pub bias_power_nw: f64,
    /// Energy of one switching event in aJ (~`I_c * Phi_0` per JJ flip).
    pub switch_energy_aj: f64,
}

/// Static bias power per Josephson junction in nW.
///
/// Calibrated so the 32-NPE peak design lands at the paper's 41.87 mW
/// (Fig. 20 / Table 4) together with [`FIXED_CHIP_POWER_MW`].
pub const BIAS_NW_PER_JJ: f64 = 339.0;

/// Chip-level fixed power (bias distribution, IO drivers) in mW.
pub const FIXED_CHIP_POWER_MW: f64 = 8.0;

/// Switching energy per JJ flip in aJ (0.2 aJ ~= 2e-19 J, the paper's
/// "energy consumption of ~1e-19 J to complete a state flipping").
pub const SWITCH_AJ_PER_JJ: f64 = 0.2;

/// Average placed area per JJ in µm² for the 2 µm process.
///
/// Derived from Table 2: 44.73 mm² / 45,542 JJs ≈ 982 µm²/JJ.
pub const AREA_UM2_PER_JJ: f64 = 982.0;

impl CellParams {
    /// Nb03-like default parameters for `kind`.
    ///
    /// JJ counts follow typical RSFQ cell-library publications (JTL 2,
    /// SPL 3, CB 7, DFF 6, NDRO 11, TFF 8); delays are scaled for a 2 µm
    /// process; area/power/energy derive from the per-JJ constants above.
    pub fn nb03(kind: CellKind) -> Self {
        let (jj_count, delay_ps) = match kind {
            CellKind::Jtl => (2, 7.0),
            CellKind::Spl2 => (3, 7.5),
            CellKind::Spl3 => (5, 9.0),
            CellKind::Cb2 => (7, 9.5),
            CellKind::Cb3 => (12, 12.0),
            CellKind::Dff => (6, 9.3),
            CellKind::Ndro => (11, 15.0),
            CellKind::Tffl => (8, 11.0),
            CellKind::Tffr => (8, 11.0),
            CellKind::DcSfq => (6, 10.0),
            CellKind::SfqDc => (12, 14.0),
        };
        Self::from_jj_count(jj_count, delay_ps)
    }

    /// Builds parameters from a JJ count and delay using the per-JJ scaling
    /// constants ([`AREA_UM2_PER_JJ`], [`BIAS_NW_PER_JJ`], [`SWITCH_AJ_PER_JJ`]).
    pub fn from_jj_count(jj_count: u32, delay_ps: Ps) -> Self {
        Self {
            jj_count,
            area_um2: f64::from(jj_count) * AREA_UM2_PER_JJ,
            delay_ps,
            bias_power_nw: f64::from(jj_count) * BIAS_NW_PER_JJ,
            switch_energy_aj: f64::from(jj_count) * SWITCH_AJ_PER_JJ,
        }
    }

    /// A copy with delay, area and bias power scaled (process migration).
    ///
    /// # Panics
    ///
    /// Panics if any factor is not positive.
    pub fn scaled(&self, delay_f: f64, area_f: f64, power_f: f64) -> Self {
        assert!(
            delay_f > 0.0 && area_f > 0.0 && power_f > 0.0,
            "factors must be positive"
        );
        Self {
            jj_count: self.jj_count,
            area_um2: self.area_um2 * area_f,
            delay_ps: self.delay_ps * delay_f,
            bias_power_nw: self.bias_power_nw * power_f,
            switch_energy_aj: self.switch_energy_aj,
        }
    }

    /// Static power of `n` instances of this cell, in mW.
    pub fn bias_power_mw(&self, n: u64) -> f64 {
        self.bias_power_nw * n as f64 * 1e-6
    }

    /// Energy of `events` switching events, in pJ.
    pub fn switch_energy_pj(&self, events: u64) -> f64 {
        self.switch_energy_aj * events as f64 * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nb03_jj_counts_are_plausible() {
        assert_eq!(CellParams::nb03(CellKind::Jtl).jj_count, 2);
        assert_eq!(CellParams::nb03(CellKind::Spl2).jj_count, 3);
        assert_eq!(CellParams::nb03(CellKind::Ndro).jj_count, 11);
        assert_eq!(CellParams::nb03(CellKind::Tffl).jj_count, 8);
        // Complex cells cost more than wiring cells.
        assert!(
            CellParams::nb03(CellKind::Ndro).jj_count > CellParams::nb03(CellKind::Jtl).jj_count
        );
    }

    #[test]
    fn area_scales_with_jj_count() {
        for kind in CellKind::ALL {
            let p = CellParams::nb03(kind);
            let expected = f64::from(p.jj_count) * AREA_UM2_PER_JJ;
            assert!((p.area_um2 - expected).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    fn bias_power_aggregation() {
        let jtl = CellParams::nb03(CellKind::Jtl);
        // 1000 JTLs = 2000 JJs * 339 nW = 0.678 mW.
        let mw = jtl.bias_power_mw(1000);
        assert!((mw - 0.678).abs() < 1e-9);
    }

    #[test]
    fn switch_energy_aggregation() {
        let ndro = CellParams::nb03(CellKind::Ndro);
        // 11 JJ * 0.2 aJ = 2.2 aJ per event; 1e6 events = 2.2 pJ.
        let pj = ndro.switch_energy_pj(1_000_000);
        assert!((pj - 2.2).abs() < 1e-9);
    }

    #[test]
    fn delays_positive_and_wiring_fastest() {
        let jtl = CellParams::nb03(CellKind::Jtl);
        for kind in CellKind::ALL {
            let p = CellParams::nb03(kind);
            assert!(p.delay_ps > 0.0);
            assert!(p.delay_ps >= jtl.delay_ps, "{kind} faster than a JTL");
        }
    }
}
