//! Cell taxonomy and port interfaces.
//!
//! The port lists mirror the cell symbols in Fig. 3 of the paper: a DFF has
//! `din`/`clk` inputs and a `dout` output, an NDRO adds `rst`, splitters fan
//! one input out to two or three outputs, and confluence buffers merge two or
//! three inputs into one output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The RSFQ standard-cell kinds used by SUSHI.
///
/// # Examples
///
/// ```
/// use sushi_cells::{CellKind, PortName};
///
/// assert_eq!(CellKind::Spl2.outputs().len(), 2);
/// assert!(CellKind::Ndro.inputs().contains(&PortName::Rst));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Josephson transmission line: one active repeater stage of wiring.
    Jtl,
    /// 1-to-2 splitter (RSFQ fan-out is limited to 1, so fan-out needs SPLs).
    Spl2,
    /// 1-to-3 splitter.
    Spl3,
    /// 2-to-1 confluence buffer (pulse merger).
    Cb2,
    /// 3-to-1 confluence buffer.
    Cb3,
    /// D flip-flop: destructive-readout storage, releases on `clk`.
    Dff,
    /// Non-destructive readout: set by `din`, cleared by `rst`, sampled by `clk`.
    Ndro,
    /// Toggle flip-flop emitting a pulse on the 0 -> 1 flip.
    Tffl,
    /// Toggle flip-flop emitting a pulse on the 1 -> 0 flip.
    Tffr,
    /// DC-to-SFQ converter: chip input pad turning level edges into pulses.
    DcSfq,
    /// SFQ-to-DC converter: chip output pad toggling a level per pulse.
    SfqDc,
}

impl CellKind {
    /// All cell kinds, in a stable order.
    pub const ALL: [CellKind; 11] = [
        CellKind::Jtl,
        CellKind::Spl2,
        CellKind::Spl3,
        CellKind::Cb2,
        CellKind::Cb3,
        CellKind::Dff,
        CellKind::Ndro,
        CellKind::Tffl,
        CellKind::Tffr,
        CellKind::DcSfq,
        CellKind::SfqDc,
    ];

    /// Number of distinct cell kinds (the length of [`CellKind::ALL`]).
    pub const COUNT: usize = 11;

    /// Dense 0-based index of this kind (its position in [`CellKind::ALL`]),
    /// for array-indexed per-kind tables on the simulator hot path.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The input ports of this cell kind.
    pub fn inputs(self) -> &'static [PortName] {
        use PortName::*;
        match self {
            CellKind::Jtl | CellKind::Spl2 | CellKind::Spl3 | CellKind::DcSfq | CellKind::SfqDc => {
                &[Din]
            }
            CellKind::Cb2 => &[DinA, DinB],
            CellKind::Cb3 => &[DinA, DinB, DinC],
            CellKind::Dff => &[Din, Clk],
            CellKind::Ndro => &[Din, Rst, Clk],
            CellKind::Tffl | CellKind::Tffr => &[Din],
        }
    }

    /// The output ports of this cell kind.
    pub fn outputs(self) -> &'static [PortName] {
        use PortName::*;
        match self {
            CellKind::Spl2 => &[DoutA, DoutB],
            CellKind::Spl3 => &[DoutA, DoutB, DoutC],
            _ => &[Dout],
        }
    }

    /// Whether `port` is a legal port of this kind, and its direction.
    pub fn port_dir(self, port: PortName) -> Option<PortDir> {
        if self.inputs().contains(&port) {
            Some(PortDir::Input)
        } else if self.outputs().contains(&port) {
            Some(PortDir::Output)
        } else {
            None
        }
    }

    /// True for the storage cells that hold internal state between pulses.
    ///
    /// SUSHI's design principle is that these state-holding cells *replace*
    /// conventional memory ("leverages the state flipping of superconducting
    /// cells to accomplish the storage and switching of neuron states").
    pub fn is_stateful(self) -> bool {
        matches!(
            self,
            CellKind::Dff | CellKind::Ndro | CellKind::Tffl | CellKind::Tffr | CellKind::SfqDc
        )
    }

    /// Short lowercase mnemonic used in netlist dumps (`jtl`, `ndro`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::Jtl => "jtl",
            CellKind::Spl2 => "spl2",
            CellKind::Spl3 => "spl3",
            CellKind::Cb2 => "cb2",
            CellKind::Cb3 => "cb3",
            CellKind::Dff => "dff",
            CellKind::Ndro => "ndro",
            CellKind::Tffl => "tffl",
            CellKind::Tffr => "tffr",
            CellKind::DcSfq => "dcsfq",
            CellKind::SfqDc => "sfqdc",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Direction of a cell port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// Pulses flow into the cell through this port.
    Input,
    /// Pulses flow out of the cell through this port.
    Output,
}

/// Named ports of RSFQ cells (union over all [`CellKind`]s).
///
/// # Examples
///
/// ```
/// use sushi_cells::PortName;
/// assert_eq!(PortName::Din.to_string(), "din");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PortName {
    /// Data input.
    Din,
    /// First data input of a confluence buffer.
    DinA,
    /// Second data input of a confluence buffer.
    DinB,
    /// Third data input of a 3-way confluence buffer.
    DinC,
    /// Clock / readout input.
    Clk,
    /// Reset input.
    Rst,
    /// Data output.
    Dout,
    /// First output of a splitter.
    DoutA,
    /// Second output of a splitter.
    DoutB,
    /// Third output of a 3-way splitter.
    DoutC,
}

impl PortName {
    /// All port names, in a stable order.
    pub const ALL: [PortName; 10] = [
        PortName::Din,
        PortName::DinA,
        PortName::DinB,
        PortName::DinC,
        PortName::Clk,
        PortName::Rst,
        PortName::Dout,
        PortName::DoutA,
        PortName::DoutB,
        PortName::DoutC,
    ];

    /// Number of distinct port names (the length of [`PortName::ALL`]).
    pub const COUNT: usize = 10;

    /// Dense 0-based index of this port (its position in [`PortName::ALL`]),
    /// for array-indexed per-port tables on the simulator hot path.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lowercase name as used in the paper's figures (`din`, `clk`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            PortName::Din => "din",
            PortName::DinA => "dinA",
            PortName::DinB => "dinB",
            PortName::DinC => "dinC",
            PortName::Clk => "clk",
            PortName::Rst => "rst",
            PortName::Dout => "dout",
            PortName::DoutA => "doutA",
            PortName::DoutB => "doutB",
            PortName::DoutC => "doutC",
        }
    }

    /// True if this is one of the data-input channels of a confluence buffer.
    pub fn is_cb_input(self) -> bool {
        matches!(self, PortName::DinA | PortName::DinB | PortName::DinC)
    }
}

impl fmt::Display for PortName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_at_least_one_input_and_output() {
        for kind in CellKind::ALL {
            assert!(!kind.inputs().is_empty(), "{kind} has no inputs");
            assert!(!kind.outputs().is_empty(), "{kind} has no outputs");
        }
    }

    #[test]
    fn splitter_fanout_matches_name() {
        assert_eq!(CellKind::Spl2.outputs().len(), 2);
        assert_eq!(CellKind::Spl3.outputs().len(), 3);
        assert_eq!(CellKind::Cb2.inputs().len(), 2);
        assert_eq!(CellKind::Cb3.inputs().len(), 3);
    }

    #[test]
    fn non_splitters_have_single_output() {
        for kind in CellKind::ALL {
            if !matches!(kind, CellKind::Spl2 | CellKind::Spl3) {
                assert_eq!(kind.outputs(), &[PortName::Dout], "{kind}");
            }
        }
    }

    #[test]
    fn port_dir_detects_inputs_outputs_and_unknown() {
        assert_eq!(CellKind::Dff.port_dir(PortName::Din), Some(PortDir::Input));
        assert_eq!(
            CellKind::Dff.port_dir(PortName::Dout),
            Some(PortDir::Output)
        );
        assert_eq!(CellKind::Dff.port_dir(PortName::Rst), None);
        assert_eq!(CellKind::Jtl.port_dir(PortName::DinB), None);
    }

    #[test]
    fn stateful_classification() {
        assert!(CellKind::Ndro.is_stateful());
        assert!(CellKind::Tffl.is_stateful());
        assert!(CellKind::Tffr.is_stateful());
        assert!(CellKind::Dff.is_stateful());
        assert!(!CellKind::Jtl.is_stateful());
        assert!(!CellKind::Cb2.is_stateful());
        assert!(!CellKind::Spl2.is_stateful());
    }

    #[test]
    fn ndro_has_three_inputs() {
        assert_eq!(
            CellKind::Ndro.inputs(),
            &[PortName::Din, PortName::Rst, PortName::Clk]
        );
    }

    #[test]
    fn port_index_matches_position_in_all() {
        assert_eq!(PortName::ALL.len(), PortName::COUNT);
        for (i, p) in PortName::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p}");
        }
    }

    #[test]
    fn kind_index_matches_position_in_all() {
        assert_eq!(CellKind::ALL.len(), CellKind::COUNT);
        for (i, k) in CellKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "{k}");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = CellKind::ALL.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::ALL.len());
    }

    #[test]
    fn display_matches_mnemonic() {
        for kind in CellKind::ALL {
            assert_eq!(kind.to_string(), kind.mnemonic());
        }
    }
}
