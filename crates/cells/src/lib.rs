//! RSFQ standard-cell library model for the SUSHI reproduction.
//!
//! Rapid single-flux-quantum (RSFQ) circuits are built from a small set of
//! standard cells (Josephson transmission lines, splitters, confluence
//! buffers, flip-flops, non-destructive readouts, toggle flip-flops). This
//! crate models the *library-level* view of those cells:
//!
//! * [`CellKind`] — the cell taxonomy and its port interface,
//! * [`timing::ConstraintTable`] — the minimum pulse-separation constraints
//!   from Table 1 of the paper,
//! * [`params::CellParams`] — per-cell Josephson-junction count, area, delay,
//!   bias power and switching energy,
//! * [`CellLibrary`] — a complete parameter set (the SIMIT-Nb03-like default
//!   is [`CellLibrary::nb03`]) including chip-level routing and power
//!   constants used by the architecture generator.
//!
//! The behavioural semantics of the cells (what a pulse *does*) live in the
//! `sushi-sim` crate; this crate is purely the data substrate.
//!
//! # Examples
//!
//! ```
//! use sushi_cells::{CellKind, CellLibrary};
//!
//! let lib = CellLibrary::nb03();
//! let ndro = lib.params(CellKind::Ndro);
//! assert!(ndro.jj_count >= 2);
//! // Table 1: two NDRO clock pulses must be at least 39.9 ps apart.
//! let c = lib.constraints(CellKind::Ndro);
//! assert!(c.min_separation(sushi_cells::PortName::Clk, sushi_cells::PortName::Clk).unwrap() > 39.0);
//! ```

pub mod energy;
pub mod kind;
pub mod library;
pub mod params;
pub mod timing;

pub use energy::PowerModel;
pub use kind::{CellKind, PortDir, PortName};
pub use library::{CellLibrary, RoutingParams};
pub use params::CellParams;
pub use timing::{Constraint, ConstraintTable};

/// Picoseconds, the native time unit of the library.
///
/// All delays and constraint windows in this crate are expressed in
/// picoseconds; `f64` keeps sub-picosecond resolution for accumulated wire
/// delays.
pub type Ps = f64;
