//! The scaling study of the paper's evaluation: resource growth (Fig. 13),
//! performance / power / efficiency sweeps (Figs. 19-21), the Table 2 and
//! Table 4 anchors, and the transmission-delay breakdown (Section 6.3A).
//!
//! Run with: `cargo run --release --example scaling_study`

use sushi_core::experiments::{
    delay_ablation, fig13, fig19_20_21, process_ablation, scaleout_study, sync_baseline_ablation,
    table2, table4,
};

fn main() {
    println!("{}", table2().1);
    println!("{}", fig13().1);
    println!("{}", fig19_20_21().1);
    println!("{}", delay_ablation());
    println!("{}", table4());
    println!("{}", sync_baseline_ablation());
    println!("{}", process_ablation());
    println!("{}", scaleout_study());

    // A little extra: where does the tree network pay off?
    use sushi_arch::chip::ChipConfig;
    use sushi_arch::PerfModel;
    println!("## Bonus: tree vs mesh network at 8x8");
    for (name, chip) in [
        ("mesh", ChipConfig::mesh(8).build()),
        ("tree", ChipConfig::tree(8).build()),
    ] {
        let r = chip.resources();
        let p = PerfModel::new(&chip).evaluate();
        println!(
            "{name}: {} JJs, {:.2} mm^2, {:.0} GSOPS, arbitrary topology: {}",
            r.total_jj(),
            r.area_mm2(),
            p.gsops,
            chip.network().supports_arbitrary_topology()
        );
    }
}
