//! Backend selection: one network, three bitwise-identical engines.
//!
//! 1. Run the same images through the scalar oracle, the per-image
//!    packed engine and the 64-lane bitplane batch engine via the
//!    `InferenceBackend` trait, and check they agree.
//! 2. Serve the network with `ServeConfig::backend` so deep micro-batches
//!    take the bitplane path automatically while shallow ones fall back
//!    to the per-image packed path.
//!
//! Run with: `cargo run --release --example serve_backends`

use std::time::Duration;

use sushi_serve::{ServeConfig, Server};
use sushi_ssnn::{Backend, BinarizedSnn, BinaryLayer, InferenceBackend, PackedSnn};

fn main() {
    // --- A small deterministic 64-32-10 network ----------------------
    let mut st = 0x5E_EDu64;
    let mut next = move || {
        st ^= st << 13;
        st ^= st >> 7;
        st ^= st << 17;
        st
    };
    let mut layer = |ins: usize, outs: usize| {
        let signs: Vec<i8> = (0..ins * outs)
            .map(|_| match next() % 5 {
                0 => 0,
                1 | 2 => -1,
                _ => 1,
            })
            .collect();
        let thresholds: Vec<i64> = (0..outs).map(|_| 1 + (next() % 6) as i64).collect();
        BinaryLayer::from_signs(signs, ins, outs, thresholds)
    };
    let net = BinarizedSnn::from_layers(vec![layer(64, 32), layer(32, 10)]);
    let packed = PackedSnn::from_network(&net);
    let images: Vec<Vec<Vec<bool>>> = (0..96)
        .map(|_| {
            (0..6)
                .map(|_| (0..64).map(|_| next() % 4 == 0).collect())
                .collect()
        })
        .collect();

    // --- 1. The InferenceBackend seam --------------------------------
    println!("offline: one dataset, every backend");
    let reference = Backend::Scalar
        .select(&net, &packed)
        .predict_batch(&images, 1);
    for backend in Backend::ALL {
        let engine = backend.select(&net, &packed);
        let preds = engine.predict_batch(&images, 1);
        assert_eq!(preds, reference, "backends are bitwise identical");
        println!("  {backend:<9} first 8 classes: {:?}", &preds[..8]);
    }

    // --- 2. Backend selection in the serving layer --------------------
    // Default config: Bitplane backend, engaged once a micro-batch has
    // coalesced at least `bitplane_min_batch` requests.
    let cfg = ServeConfig::new()
        .max_batch(32)
        .max_delay(Duration::from_millis(1))
        .workers(1)
        .backend(Backend::Bitplane)
        .bitplane_min_batch(4);
    let server = Server::start(packed, cfg);
    let handle = server.handle();
    let served: Vec<usize> = std::thread::scope(|scope| {
        let clients: Vec<_> = images
            .chunks(12)
            .map(|chunk| {
                let h = handle.clone();
                scope.spawn(move || -> Vec<usize> {
                    chunk
                        .iter()
                        .map(|img| h.predict(img.clone()).expect("served").class)
                        .collect()
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });
    assert_eq!(served, reference, "served == offline, backend-independent");
    let stats = server.stats();
    println!(
        "served {} images in {} micro-batches ({} on the bitplane path)",
        stats.served, stats.batches, stats.bitplane_batches
    );
}
