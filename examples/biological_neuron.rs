//! The biological neuron model of Figs. 6/7: below-threshold charging with
//! leak, a rising phase that emits the spike, and a falling/undershoot
//! phase — all realised as state transitions of the multi-state NPE,
//! plus a demo of the pulse-gain weight structure feeding it.
//!
//! Run with: `cargo run --release --example biological_neuron`

use sushi_arch::npe::BioPhase;
use sushi_arch::{BioNeuron, WeightStructure};

fn phase_name(p: BioPhase) -> String {
    match p {
        BioPhase::Below(t) => format!("b{t}"),
        BioPhase::Rising(i) => format!("r{i}"),
        BioPhase::Falling(i) => format!("f{i}"),
    }
}

fn main() {
    // A neuron needing 4 spikes, with 3 rising and 3 falling states.
    let mut neuron = BioNeuron::new(4, 3, 3);
    println!(
        "neuron with threshold 4, R=3, F=3: {} states total (paper: ~500 suffice for SNN inference)",
        neuron.state_count()
    );

    // A synapse with pulse-gain weight 3: one presynaptic spike becomes
    // three stimulus pulses at the soma.
    let mut synapse = WeightStructure::new(8);
    synapse.configure(3).unwrap();

    println!("\n-- stimulus trace (S = spike stimulus, T = time stimulus) --");
    let script: &[(char, &str)] = &[
        ('S', "presynaptic spike through gain-3 synapse"),
        ('T', "time tick"),
        ('T', "time tick (leak)"),
        ('S', "second presynaptic spike"),
        ('T', "time tick"),
        ('T', "time tick"),
        ('T', "time tick"),
        ('T', "time tick"),
        ('T', "time tick"),
        ('T', "time tick"),
        ('T', "time tick"),
    ];
    for (kind, label) in script {
        match kind {
            'S' => {
                let pulses = synapse.amplify(1);
                for _ in 0..pulses {
                    neuron.on_spike();
                }
                println!(
                    "S  ({label}): {} pulses -> state {}",
                    pulses,
                    phase_name(neuron.phase())
                );
            }
            _ => {
                let fired = neuron.on_time();
                println!(
                    "T  ({label}): state {}{}",
                    phase_name(neuron.phase()),
                    if fired { "  *** SPIKE SENT ***" } else { "" }
                );
            }
        }
    }

    // Failed initiation: too few spikes leak away.
    let mut weak = BioNeuron::new(5, 2, 2);
    weak.on_spike();
    weak.on_spike();
    let mut fired = false;
    for _ in 0..4 {
        fired |= weak.on_time();
    }
    println!(
        "\nfailed initiation demo: 2 spikes against threshold 5 -> fired: {fired}, back at {}",
        phase_name(weak.phase())
    );
}
