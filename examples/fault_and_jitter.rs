//! Verification under imperfect silicon: fabrication-spread jitter, dead
//! cells, and VCD waveform export.
//!
//! The paper validates SUSHI by matching oscilloscope waveforms against
//! simulation. This example shows the same flow with adversity added:
//! a chip with realistic timing jitter still verifies, a chip with a dead
//! cell is caught, and the traces export as standard VCD for any waveform
//! viewer.
//!
//! Run with: `cargo run --release --example fault_and_jitter`

use sushi_cells::{CellKind, CellLibrary, PortName};
use sushi_core::CellAccurateChip;
use sushi_sim::vcd::VcdBuilder;
use sushi_sim::{Fault, Netlist, RingTracer, SimConfig};
use sushi_ssnn::binarize::BinaryLayer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small layer that must fire neuron 0 (sum 3 >= threshold 2).
    let layer = BinaryLayer::from_signs(vec![1, 1, 1, -1, 1, 1], 3, 2, vec![2, 3]);
    let active = vec![true, true, true];

    // --- Healthy chip, nominal timing --------------------------------
    let healthy = CellAccurateChip::build(2, 4)?;
    let expected = healthy.expected_column_block(&layer, 0..2, &active);
    let nominal = healthy.run_column_block(&layer, 0..2, &active)?;
    println!(
        "healthy chip:   fired {:?}, violations {}",
        nominal.fired, nominal.violations
    );
    println!("simulation:     fired {expected:?}");

    // --- Fabrication spread: 2 ps sigma on every cell delay ----------
    for seed in 0..3u64 {
        let jittery = CellAccurateChip::build(2, 4)?.with_jitter(seed, 2.0);
        let run = jittery.run_column_block(&layer, 0..2, &active)?;
        println!(
            "jitter seed {seed}: fired {:?}, violations {} -> {}",
            run.fired,
            run.violations,
            if run.fired == expected && run.violations == 0 {
                "VERIFIED"
            } else {
                "REJECTED"
            }
        );
    }

    // --- A dead output cell in NPE0's final state controller ---------
    let broken = CellAccurateChip::build(2, 4)?.with_fault("npe0.sc3.cb_out", Fault::DropOutput);
    let bad = broken.run_column_block(&layer, 0..2, &active)?;
    println!(
        "faulty chip:    fired {:?} -> {}",
        bad.fired,
        if bad.fired == expected {
            "escaped detection (!)"
        } else {
            "DEFECT CAUGHT"
        }
    );

    // --- VCD export of a state-controller trace ----------------------
    let mut n = Netlist::new();
    let ports = sushi_arch::ScNetlist::build(&mut n, "sc")?;
    n.add_input("in", ports.input.cell, ports.input.port)?;
    n.add_input("set1", ports.set1.cell, ports.set1.port)?;
    n.probe("out", ports.out.cell, ports.out.port)?;
    // Also watch the raw converter output feeding the SC.
    let pad = n.add_cell(CellKind::SfqDc, "pad");
    n.connect(ports.out.cell, ports.out.port, pad, PortName::Din)?;
    n.probe("dc_level", pad, PortName::Dout)?;
    let lib = CellLibrary::nb03();
    let mut sim = SimConfig::new()
        .observer(RingTracer::new(64))
        .build(&n, &lib);
    sim.inject("set1", &[0.0])?;
    sim.inject("in", &[200.0, 400.0, 600.0, 800.0])?;
    sim.run_to_completion()?;
    let vcd = VcdBuilder::new("sushi_sc").from_simulator(&sim).render();
    println!("\n--- VCD export (load in GTKWave) ---\n{vcd}");

    // --- The same run, seen through the event tracer -----------------
    let tracer: RingTracer = sim.take_observer_as().expect("tracer attached above");
    println!(
        "--- last {} of {} traced events (ring capacity {}) ---",
        tracer.len().min(5),
        tracer.len() + tracer.dropped() as usize,
        tracer.capacity()
    );
    let events: Vec<_> = tracer.events().collect();
    for ev in events.iter().skip(events.len().saturating_sub(5)) {
        println!("  t={:7.1} ps  {:?}", ev.time, ev.what);
    }
    Ok(())
}
