//! Quickstart: the SUSHI stack in five minutes.
//!
//! 1. Pulse a cell-level state controller and watch it gate flips.
//! 2. Use the behavioural NPE chain as a programmable-threshold neuron.
//! 3. Train a small spiking network, compile it, and run it on the chip.
//!
//! Run with: `cargo run --release --example quickstart`

use sushi_arch::state_controller::ScNetlist;
use sushi_arch::NpeChain;
use sushi_cells::CellLibrary;
use sushi_core::SushiChip;
use sushi_sim::{EvalOptions, Netlist, SimConfig};
use sushi_snn::data::synth_digits;
use sushi_snn::train::{TrainConfig, Trainer};
use sushi_ssnn::compiler::{Compiler, CompilerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A state controller at cell level -------------------------
    let mut netlist = Netlist::new();
    let sc = ScNetlist::build(&mut netlist, "sc")?;
    netlist.add_input("in", sc.input.cell, sc.input.port)?;
    netlist.add_input("set1", sc.set1.cell, sc.set1.port)?;
    netlist.probe("out", sc.out.cell, sc.out.port)?;
    let library = CellLibrary::nb03();
    let mut sim = SimConfig::new().build(&netlist, &library);
    sim.inject("set1", &[0.0])?; // gate the 1 -> 0 flip
    sim.inject("in", &[200.0, 400.0, 600.0, 800.0])?;
    sim.run_to_completion()?;
    println!(
        "state controller: 4 input pulses -> {} gated output pulses (emit-on-fall)",
        sim.pulses("out").len()
    );
    println!("timing violations: {}", sim.violations().len());

    // --- 2. An NPE chain as a threshold-5 neuron ----------------------
    let mut npe = NpeChain::new(10); // 1024 states, like the paper's NPE
    npe.preload_threshold(5);
    let fired: Vec<u64> = (1..=12u64).filter(|_| npe.pulse_in()).collect();
    println!("NPE chain (threshold 5): fired after {fired:?} pulses");

    // --- 3. Train, compile, infer on the chip ------------------------
    let data = synth_digits(400, 7);
    let (train, test) = data.split(0.8);
    let mut cfg = TrainConfig::tiny_binary();
    cfg.epochs = 8;
    println!("training a {:?} SSNN...", cfg.layer_sizes());
    let model = Trainer::new(cfg).fit(&train);
    let program = Compiler::new(CompilerConfig::paper()).compile(&model);
    let chip = SushiChip::paper();
    println!(
        "chip: {} NPEs, {} JJs, {} slices for this network",
        chip.design().npe_count(),
        chip.design().resources().total_jj(),
        program.schedule.len()
    );
    let eval = chip.evaluate(&program, &test, &EvalOptions::new().report(true));
    println!(
        "chip accuracy on {} test samples: {:.1}% (reload share {:.1}%)",
        test.len(),
        eval.accuracy * 100.0,
        eval.reload.reload_share() * 100.0
    );
    if let Some(report) = &eval.report {
        println!(
            "evaluated at {:.0} samples/s across {} workers ({:.0}% utilization)",
            report.samples_per_s,
            report.workers.len(),
            report.utilization * 100.0
        );
    }
    let outcome = chip.run_sample(&program, &test.images[0], 0);
    println!(
        "sample 0: predicted {} (true {}), spike counts {:?}",
        outcome.prediction, test.labels[0], outcome.counts
    );
    Ok(())
}
