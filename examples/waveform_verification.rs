//! Chip verification the way the paper does it (Figs. 14 and 16): drive
//! the cell-level netlist with encoded pulse streams, sample the outputs
//! like an oscilloscope, and compare against the behavioural simulation.
//!
//! Run with: `cargo run --release --example waveform_verification`

use sushi_core::experiments::{fig14, fig16};
use sushi_core::Oscilloscope;
use sushi_sim::render_pulse_rows;

fn main() {
    // Fig 14: the asynchronous neuron timing protocol.
    println!("{}", fig14());

    // Fig 16: cell-accurate chip vs simulation on a real inference.
    let (result, text) = fig16();
    println!("{text}");

    // Render the per-label "waveforms" (one column per time step).
    let window = 1000.0;
    let steps = result.chip_fires[0].len();
    let rows: Vec<(String, Vec<f64>)> = result
        .chip_fires
        .iter()
        .enumerate()
        .map(|(j, fires)| {
            let times: Vec<f64> = fires
                .iter()
                .enumerate()
                .filter(|(_, f)| **f)
                .map(|(t, _)| t as f64 * window + window / 2.0)
                .collect();
            (format!("label{j}"), times)
        })
        .collect();
    let row_refs: Vec<(&str, &[f64])> = rows
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_slice()))
        .collect();
    println!(
        "chip output pulse rows ({} time steps):\n{}",
        steps,
        render_pulse_rows(&row_refs, 0.0, steps as f64 * window, 5 * steps)
    );

    // Oscilloscope-style sampled levels for the winning label.
    let osc = Oscilloscope::default();
    let winner = result.chip_prediction;
    let times: Vec<f64> = result.chip_fires[winner]
        .iter()
        .enumerate()
        .filter(|(_, f)| **f)
        .map(|(t, _)| t as f64 * window + window / 2.0)
        .collect();
    let train = sushi_sim::PulseTrain::from_times(times);
    let samples = osc.sample(&train, steps as f64 * window);
    let levels: String = samples.iter().map(|&l| if l { '1' } else { '0' }).collect();
    println!("sampled DC level of label{winner} (pulse-level conversion): {levels}");
    println!(
        "verification {}",
        if result.waveforms_match() && result.violations == 0 {
            "PASSED: chip output is consistent with simulation"
        } else {
            "FAILED"
        }
    );
}
