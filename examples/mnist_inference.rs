//! The Table 3 workload: train the paper's 784-800-10 SSNN on the
//! synthetic digit and fashion datasets, then compare the float reference
//! against the SUSHI chip pipeline (accuracy + consistency).
//!
//! Run with: `cargo run --release --example mnist_inference [--full]`
//!
//! `--full` uses the paper-comparable scale (~1 min); the default is a
//! quick run.

use sushi_core::experiments::{table3, Scale};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    println!(
        "running Table 3 at {} scale ({} samples, {} epochs, hidden {})...\n",
        if full { "full" } else { "quick" },
        scale.samples,
        scale.epochs,
        scale.hidden
    );
    let (rows, text) = table3(scale);
    println!("{text}");
    for r in &rows {
        let drop = (r.reference_accuracy - r.sushi_accuracy) * 100.0;
        println!(
            "{}: accuracy drop {:.2} pp, disagreement {:.2}%",
            r.dataset,
            drop,
            (1.0 - r.consistency) * 100.0
        );
    }
}
