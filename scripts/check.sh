#!/usr/bin/env bash
# Repo gate: formatting, lints and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (deny rustdoc warnings)"
# Only the sushi crates: vendor/ stand-ins are out of scope for the gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p sushi-cells -p sushi-sim -p sushi-arch -p sushi-snn -p sushi-ssnn \
  -p sushi-serve -p sushi-core -p sushi-bench

echo "==> cargo test -q"
cargo test -q

echo "==> bench metrics smoke run"
# Capture, then grep: grep -q on a pipe would close it early and the
# binary's println! would die on SIGPIPE.
bench_out="$(cargo run --release -q -p sushi-bench -- --quick bench)"
grep -q "hot cells:" <<<"$bench_out"
grep -q "packed SSNN engine" <<<"$bench_out"
grep -q "bitplane batch engine" <<<"$bench_out"
grep -q "serving pipeline (sharded micro-batching)" <<<"$bench_out"
grep -q "shards .* | executors " <<<"$bench_out"
grep -q "training kernels" <<<"$bench_out"

echo "==> criterion + serve bench smoke (scripts/bench.sh --smoke)"
# Also covers BENCH_serve.json assembly: the smoke run executes the
# serving scenarios at reduced budget and validates the JSON structure.
scripts/bench.sh --smoke

echo "All checks passed."
