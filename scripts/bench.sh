#!/usr/bin/env bash
# Runs the criterion benchmarks and the serving-throughput scenarios and
# writes machine-readable summaries with the commit hash and headline
# throughput numbers.
#
#   scripts/bench.sh            full run -> BENCH_sim.json + BENCH_ssnn.json
#                               + BENCH_serve.json + BENCH_train.json
#                               (tracked baselines)
#   scripts/bench.sh --smoke    tiny budget -> temp files, structural checks
#
# The vendored criterion stand-in appends one JSON line per benchmark to
# $CRITERION_JSON; the serve scenarios write one JSON object to
# $SERVE_JSON. This script assembles those with jq, validates the result,
# and only then moves it into place (temp file + atomic rename), so a
# failed or interrupted run never leaves a truncated tracked baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
[[ "${1:-}" == "--smoke" ]] && mode=smoke

raw_sim="$(mktemp)"
raw_ssnn="$(mktemp)"
raw_serve="$(mktemp)"
raw_train="$(mktemp)"
tmp_sim="$(mktemp sushi-bench-sim.XXXXXX)"
tmp_ssnn="$(mktemp sushi-bench-ssnn.XXXXXX)"
tmp_serve="$(mktemp sushi-bench-serve.XXXXXX)"
tmp_train="$(mktemp sushi-bench-train.XXXXXX)"
cleanup() {
  rm -f "$raw_sim" "$raw_ssnn" "$raw_serve" "$raw_train" \
    "$tmp_sim" "$tmp_ssnn" "$tmp_serve" "$tmp_train"
}
trap cleanup EXIT

serve_args=()
if [[ "$mode" == smoke ]]; then
  # One warm-up plus two samples per benchmark: exercises the full path
  # (bench targets, JSON emission, jq assembly) in seconds.
  export CRITERION_SAMPLES=2 CRITERION_MEASUREMENT_MS=200
  serve_args=(--quick)
fi

echo "==> cargo bench -p sushi-bench --bench sim_engine ($mode)"
CRITERION_JSON="$raw_sim" cargo bench -q -p sushi-bench --bench sim_engine

echo "==> cargo bench -p sushi-bench --bench table3_inference ($mode)"
CRITERION_JSON="$raw_ssnn" cargo bench -q -p sushi-bench --bench table3_inference

echo "==> cargo bench -p sushi-bench --bench train_pipeline ($mode)"
CRITERION_JSON="$raw_train" cargo bench -q -p sushi-bench --bench train_pipeline

echo "==> serving-throughput scenarios ($mode)"
SERVE_JSON="$raw_serve" cargo run --release -q -p sushi-bench -- "${serve_args[@]}" serve

# Benchmark ids must be unique within each raw file: a duplicated id
# (e.g. a dynamic "<n>_workers" row colliding with a static one on an
# n-core host) would silently shadow its twin in every jq `first`
# selector below.
for raw in "$raw_sim" "$raw_ssnn" "$raw_train"; do
  jq -es 'map(.id) | length == (unique | length)' "$raw" >/dev/null \
    || { echo "bench.sh: duplicate benchmark ids in $raw:" >&2; \
         jq -rs 'group_by(.id) | map(select(length > 1) | .[0].id) | .[]' "$raw" >&2; exit 1; }
done

commit="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"
stamp="$(date -u +%FT%TZ)"

cpus="$(nproc 2>/dev/null || echo 1)"

jq -s --arg commit "$commit" --arg mode "$mode" --arg date "$stamp" --argjson cpus "$cpus" '
  (map(select(.id == "jtl_pipeline_200x100_pulses")) | first) as $jtl
  | (map(select(.id == "jtl_batch32_sequential")) | first) as $batch
  | (map(select(.id == "partitioned_mesh_sequential")) | first) as $mseq
  | (map(select(.id == "partitioned_mesh_4w")) | first) as $mpar
  | {
      commit: $commit,
      mode: $mode,
      generated_utc: $date,
      host_cpus: $cpus,
      headline: {
        jtl_pipeline_200x100_melem_per_s:
          (if $jtl then ($jtl.elem_per_s / 1e6 * 1000 | round / 1000) else null end),
        jtl_batch32_sequential_items_per_s:
          (if $batch then (32e9 / $batch.mean_ns * 1000 | round / 1000) else null end),
        partitioned_mesh_sequential_melem_per_s:
          (if $mseq then ($mseq.elem_per_s / 1e6 * 1000 | round / 1000) else null end),
        partitioned_mesh_4w_melem_per_s:
          (if $mpar then ($mpar.elem_per_s / 1e6 * 1000 | round / 1000) else null end),
        partitioned_mesh_speedup:
          (if ($mseq and $mpar and ($mseq.elem_per_s > 0))
           then ($mpar.elem_per_s / $mseq.elem_per_s * 100 | round / 100)
           else null end)
      },
      benchmarks: .
    }' "$raw_sim" > "$tmp_sim"

# Sanity-gate the sim output in both modes: all eight benchmarks
# reported and every headline rate present and positive.
jq -e '
  .commit and (.benchmarks | length) >= 8
  and .headline.jtl_pipeline_200x100_melem_per_s > 0
  and .headline.jtl_batch32_sequential_items_per_s > 0
  and .headline.partitioned_mesh_sequential_melem_per_s > 0
  and .headline.partitioned_mesh_4w_melem_per_s > 0
  and .headline.partitioned_mesh_speedup > 0
' "$tmp_sim" >/dev/null || { echo "bench.sh: sim summary failed validation" >&2; exit 1; }

# Partitioned-engine gate in full mode only: the 4-worker mesh run must
# hold at least a 2x lead over the sequential event loop — but only
# where the hardware can actually run the workers in parallel. A
# single-CPU host records the honest sub-1x (the workers time-slice one
# core across every window barrier; see EXPERIMENTS.md).
if [[ "$mode" == full ]]; then
  if jq -e '.host_cpus >= 4' "$tmp_sim" >/dev/null; then
    jq -e '.headline.partitioned_mesh_speedup >= 2' "$tmp_sim" >/dev/null \
      || { echo "bench.sh: partitioned mesh speedup below 2x on a >=4-core host" >&2; exit 1; }
  fi
fi

# The SSNN engine headlines: packed-vs-scalar images/s on the paper's
# 784-800-10 shape, and the bitplane batch engine against the per-image
# packed path over the *same* 64 images at the same worker count (both
# rows live in the ssnn_bitplane group so the ratio isolates the
# layout+kernel win).
jq -s --arg commit "$commit" --arg mode "$mode" --arg date "$stamp" '
  (map(select(.id == "packed_predict_784_800_10")) | first) as $packed
  | (map(select(.id == "scalar_predict_784_800_10")) | first) as $scalar
  | (map(select(.id == "bitplane_predict_batch64_784_800_10")) | first) as $plane
  | (map(select(.id == "packed_predict_batch64_784_800_10")) | first) as $packed64
  | {
      commit: $commit,
      mode: $mode,
      generated_utc: $date,
      headline: {
        packed_images_per_s:
          (if $packed then ($packed.elem_per_s * 1000 | round / 1000) else null end),
        scalar_images_per_s:
          (if $scalar then ($scalar.elem_per_s * 1000 | round / 1000) else null end),
        packed_over_scalar_speedup:
          (if ($packed and $scalar and ($scalar.elem_per_s > 0))
           then ($packed.elem_per_s / $scalar.elem_per_s * 100 | round / 100)
           else null end),
        bitplane_images_per_s:
          (if $plane then ($plane.elem_per_s * 1000 | round / 1000) else null end),
        bitplane_over_packed_speedup:
          (if ($plane and $packed64 and ($packed64.elem_per_s > 0))
           then ($plane.elem_per_s / $packed64.elem_per_s * 100 | round / 100)
           else null end)
      },
      benchmarks: .
    }' "$raw_ssnn" > "$tmp_ssnn"

# Structural gate in both modes: every headline rate present and positive
# and both speedups computable.
jq -e '
  .commit and (.benchmarks | length) >= 11
  and .headline.packed_images_per_s > 0
  and .headline.scalar_images_per_s > 0
  and .headline.packed_over_scalar_speedup > 0
  and .headline.bitplane_images_per_s > 0
  and .headline.bitplane_over_packed_speedup > 0
' "$tmp_ssnn" >/dev/null || { echo "bench.sh: ssnn summary failed validation" >&2; exit 1; }

# Performance gates in full mode only (smoke budgets are too noisy): the
# packed engine must hold at least an 8x throughput lead over the scalar
# oracle, and the bitplane batch engine at least 3x per-image packed at
# batch 64 — the PR acceptance bars.
if [[ "$mode" == full ]]; then
  jq -e '.headline.packed_over_scalar_speedup >= 8' "$tmp_ssnn" >/dev/null \
    || { echo "bench.sh: packed speedup below 8x" >&2; exit 1; }
  jq -e '.headline.bitplane_over_packed_speedup >= 3' "$tmp_ssnn" >/dev/null \
    || { echo "bench.sh: bitplane batch-64 speedup below 3x packed" >&2; exit 1; }
fi

# The training-pipeline headlines: BPTT forward/backward/epoch samples/s
# on the paper's 784-800-10 shape, plus the epoch speedup against the
# pre-SIMD baseline (commit 9ce6bef5a06c, spawn-per-matmul crossbeam
# kernels, allocating BPTT) measured on the same single-CPU host class.
train_baseline_epoch=1855.99
train_baseline_commit="9ce6bef5a06c"
jq -s --arg commit "$commit" --arg mode "$mode" --arg date "$stamp" \
  --argjson cpus "$cpus" --argjson base "$train_baseline_epoch" \
  --arg basecommit "$train_baseline_commit" '
  (map(select(.id == "train_forward_784_800_10")) | first) as $fwd
  | (map(select(.id == "train_backward_784_800_10")) | first) as $bwd
  | (map(select(.id == "train_epoch_784_800_10")) | first) as $epoch
  | {
      commit: $commit,
      mode: $mode,
      generated_utc: $date,
      host_cpus: $cpus,
      baseline: {
        commit: $basecommit,
        epoch_samples_per_s: $base
      },
      headline: {
        forward_samples_per_s:
          (if $fwd then ($fwd.elem_per_s * 1000 | round / 1000) else null end),
        backward_samples_per_s:
          (if $bwd then ($bwd.elem_per_s * 1000 | round / 1000) else null end),
        epoch_samples_per_s:
          (if $epoch then ($epoch.elem_per_s * 1000 | round / 1000) else null end),
        epoch_speedup_vs_baseline:
          (if ($epoch and ($base > 0))
           then ($epoch.elem_per_s / $base * 100 | round / 100)
           else null end)
      },
      benchmarks: .
    }' "$raw_train" > "$tmp_train"

# Structural gate in both modes: all three rows reported with positive
# rates and the baseline speedup computable.
jq -e '
  .commit and (.benchmarks | length) >= 3
  and .headline.forward_samples_per_s > 0
  and .headline.backward_samples_per_s > 0
  and .headline.epoch_samples_per_s > 0
  and .headline.epoch_speedup_vs_baseline > 0
' "$tmp_train" >/dev/null || { echo "bench.sh: train summary failed validation" >&2; exit 1; }

# Training-kernel gate in full mode only: the SIMD + pooled-thread +
# allocation-free hot path must hold at least a 2x epoch-throughput lead
# over the pre-PR baseline — the PR acceptance bar.
if [[ "$mode" == full ]]; then
  jq -e '.headline.epoch_speedup_vs_baseline >= 2' "$tmp_train" >/dev/null \
    || { echo "bench.sh: training epoch speedup below 2x baseline" >&2; exit 1; }
fi

# The serving summary: the serve binary already emits the full payload;
# stamp it with commit/mode/date plus the pre-pipeline baseline (the
# tracked BENCH_serve.json recorded at commit 9ce6bef0454e: one global
# dispatcher, bool-frame requests, per-request channels).
serve_baseline_batched=26425.82
serve_baseline_commit="9ce6bef0454e"
jq --arg commit "$commit" --arg mode "$mode" --arg date "$stamp" \
  --argjson base "$serve_baseline_batched" --arg basecommit "$serve_baseline_commit" \
  '{commit: $commit, mode: $mode, generated_utc: $date,
    baseline: {commit: $basecommit, batched_images_per_s: $base}} + .' \
  "$raw_serve" > "$tmp_serve"

# Structural gate in both modes: all three scenarios reported with
# positive served throughput, latency percentiles present, and the
# sharded-pipeline headline fields populated.
jq -e '
  .commit and .host_cpus >= 1
  and .headline.serialized_images_per_s > 0
  and .headline.serialized_p50_us > 0
  and .headline.batched_images_per_s > 0
  and .headline.mean_batch_size > 1
  and .headline.shards >= 1
  and .headline.executors >= 1
  and .headline.stolen_batches >= 0
  and .serialized.latency.p99_us > 0
  and .batched.latency.p99_us > 0
  and .overload.sent > 0
' "$tmp_serve" >/dev/null || { echo "bench.sh: serve summary failed validation" >&2; exit 1; }

# Serving gates in full mode only. Overload at 2x the measured rate must
# be handled by admission control: requests shed (not queued without
# bound) and the p99 of *served* requests bounded by the queue depth —
# 250 ms is ~10x the worst-case drain of the 64-deep queue. The >= 3x
# micro-batching speedup only materializes where batches can fan out
# across cores, so it is gated on host parallelism; single-core hosts
# record the honest ~1x (see EXPERIMENTS.md).
if [[ "$mode" == full ]]; then
  jq -e '.headline.bitplane_batches > 0' "$tmp_serve" >/dev/null \
    || { echo "bench.sh: batched run never took the bitplane path" >&2; exit 1; }
  jq -e '.headline.overload_rejected > 0' "$tmp_serve" >/dev/null \
    || { echo "bench.sh: overload run shed nothing - admission control inert" >&2; exit 1; }
  jq -e '.headline.overload_p99_us < 250000' "$tmp_serve" >/dev/null \
    || { echo "bench.sh: overload p99 unbounded (>= 250 ms)" >&2; exit 1; }
  if jq -e '.host_cpus >= 4' "$tmp_serve" >/dev/null; then
    jq -e '.headline.batch_speedup >= 3' "$tmp_serve" >/dev/null \
      || { echo "bench.sh: micro-batch speedup below 3x on a >=4-core host" >&2; exit 1; }
    # Regression gate against the pre-pipeline baseline stamped above:
    # the sharded multi-executor pipeline must hold at least a 1.3x
    # batched-throughput lead. Gated on host parallelism for the same
    # reason as the speedup gate above — shards and executors only help
    # where cores exist to run them.
    jq -e '.headline.batched_images_per_s >= 1.3 * .baseline.batched_images_per_s' \
      "$tmp_serve" >/dev/null \
      || { echo "bench.sh: batched throughput below 1.3x the $serve_baseline_commit baseline ($serve_baseline_batched img/s)" >&2; exit 1; }
  fi
fi

if [[ "$mode" == smoke ]]; then
  echo "smoke bench OK ($(jq -r '.benchmarks | length' "$tmp_sim")+$(jq -r '.benchmarks | length' "$tmp_ssnn")+$(jq -r '.benchmarks | length' "$tmp_train") benchmarks + serve scenarios, outputs validated)"
else
  # Validated: move the summaries into place atomically.
  mv "$tmp_sim" BENCH_sim.json
  mv "$tmp_ssnn" BENCH_ssnn.json
  mv "$tmp_serve" BENCH_serve.json
  mv "$tmp_train" BENCH_train.json
  for f in BENCH_sim.json BENCH_ssnn.json BENCH_serve.json BENCH_train.json; do
    echo "wrote $f:"
    jq '.headline' "$f"
  done
fi
