#!/usr/bin/env bash
# Runs the criterion benchmarks and writes machine-readable summaries with
# the commit hash and headline throughput numbers.
#
#   scripts/bench.sh            full run -> BENCH_sim.json + BENCH_ssnn.json
#                               (tracked baselines)
#   scripts/bench.sh --smoke    tiny budget -> temp files, structural checks
#
# The vendored criterion stand-in appends one JSON line per benchmark to
# $CRITERION_JSON; this script assembles those lines with jq.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
[[ "${1:-}" == "--smoke" ]] && mode=smoke

raw_sim="$(mktemp)"
raw_ssnn="$(mktemp)"
cleanup() { rm -f "$raw_sim" "$raw_ssnn" "${tmp_sim:-}" "${tmp_ssnn:-}"; }
trap cleanup EXIT

if [[ "$mode" == smoke ]]; then
  # One warm-up plus two samples per benchmark: exercises the full path
  # (bench targets, JSON emission, jq assembly) in seconds.
  export CRITERION_SAMPLES=2 CRITERION_MEASUREMENT_MS=200
  tmp_sim="$(mktemp)"
  tmp_ssnn="$(mktemp)"
  out_sim="$tmp_sim"
  out_ssnn="$tmp_ssnn"
else
  out_sim="BENCH_sim.json"
  out_ssnn="BENCH_ssnn.json"
fi

echo "==> cargo bench -p sushi-bench --bench sim_engine ($mode)"
CRITERION_JSON="$raw_sim" cargo bench -q -p sushi-bench --bench sim_engine

echo "==> cargo bench -p sushi-bench --bench table3_inference ($mode)"
CRITERION_JSON="$raw_ssnn" cargo bench -q -p sushi-bench --bench table3_inference

commit="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"
stamp="$(date -u +%FT%TZ)"

jq -s --arg commit "$commit" --arg mode "$mode" --arg date "$stamp" '
  (map(select(.id == "jtl_pipeline_200x100_pulses")) | first) as $jtl
  | (map(select(.id == "jtl_batch32_sequential")) | first) as $batch
  | {
      commit: $commit,
      mode: $mode,
      generated_utc: $date,
      headline: {
        jtl_pipeline_200x100_melem_per_s:
          (if $jtl then ($jtl.elem_per_s / 1e6 * 1000 | round / 1000) else null end),
        jtl_batch32_sequential_items_per_s:
          (if $batch then (32e9 / $batch.mean_ns * 1000 | round / 1000) else null end)
      },
      benchmarks: .
    }' "$raw_sim" > "$out_sim"

# Sanity-gate the sim output in both modes: all six benchmarks reported
# and both headline rates present and positive.
jq -e '
  .commit and (.benchmarks | length) >= 6
  and .headline.jtl_pipeline_200x100_melem_per_s > 0
  and .headline.jtl_batch32_sequential_items_per_s > 0
' "$out_sim" >/dev/null || { echo "bench.sh: $out_sim failed validation" >&2; exit 1; }

# The packed-vs-scalar SSNN headline: images/s for both engines on the
# paper's 784-800-10 shape, and the speedup ratio between them.
jq -s --arg commit "$commit" --arg mode "$mode" --arg date "$stamp" '
  (map(select(.id == "packed_predict_784_800_10")) | first) as $packed
  | (map(select(.id == "scalar_predict_784_800_10")) | first) as $scalar
  | {
      commit: $commit,
      mode: $mode,
      generated_utc: $date,
      headline: {
        packed_images_per_s:
          (if $packed then ($packed.elem_per_s * 1000 | round / 1000) else null end),
        scalar_images_per_s:
          (if $scalar then ($scalar.elem_per_s * 1000 | round / 1000) else null end),
        packed_over_scalar_speedup:
          (if ($packed and $scalar and ($scalar.elem_per_s > 0))
           then ($packed.elem_per_s / $scalar.elem_per_s * 100 | round / 100)
           else null end)
      },
      benchmarks: .
    }' "$raw_ssnn" > "$out_ssnn"

# Structural gate in both modes: the packed and scalar headline rates are
# present and positive and the speedup is computable.
jq -e '
  .commit and (.benchmarks | length) >= 8
  and .headline.packed_images_per_s > 0
  and .headline.scalar_images_per_s > 0
  and .headline.packed_over_scalar_speedup > 0
' "$out_ssnn" >/dev/null || { echo "bench.sh: $out_ssnn failed validation" >&2; exit 1; }

# Performance gate in full mode only (smoke budgets are too noisy): the
# packed engine must hold at least an 8x throughput lead over the scalar
# oracle, the PR's acceptance bar.
if [[ "$mode" == full ]]; then
  jq -e '.headline.packed_over_scalar_speedup >= 8' "$out_ssnn" >/dev/null \
    || { echo "bench.sh: packed speedup below 8x in $out_ssnn" >&2; exit 1; }
fi

if [[ "$mode" == smoke ]]; then
  echo "smoke bench OK ($(jq -r '.benchmarks | length' "$out_sim")+$(jq -r '.benchmarks | length' "$out_ssnn") benchmarks, outputs validated)"
else
  echo "wrote $out_sim:"
  jq '.headline' "$out_sim"
  echo "wrote $out_ssnn:"
  jq '.headline' "$out_ssnn"
fi
