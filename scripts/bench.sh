#!/usr/bin/env bash
# Runs the sim_engine criterion benchmarks and writes a machine-readable
# summary with the commit hash and headline throughput numbers.
#
#   scripts/bench.sh            full run -> BENCH_sim.json (tracked baseline)
#   scripts/bench.sh --smoke    tiny budget -> temp file, structural checks only
#
# The vendored criterion stand-in appends one JSON line per benchmark to
# $CRITERION_JSON; this script assembles those lines with jq.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
[[ "${1:-}" == "--smoke" ]] && mode=smoke

raw="$(mktemp)"
cleanup() { rm -f "$raw" "${tmp_out:-}"; }
trap cleanup EXIT

if [[ "$mode" == smoke ]]; then
  # One warm-up plus two samples per benchmark: exercises the full path
  # (bench targets, JSON emission, jq assembly) in seconds.
  export CRITERION_SAMPLES=2 CRITERION_MEASUREMENT_MS=200
  tmp_out="$(mktemp)"
  out="$tmp_out"
else
  out="BENCH_sim.json"
fi

echo "==> cargo bench -p sushi-bench --bench sim_engine ($mode)"
CRITERION_JSON="$raw" cargo bench -q -p sushi-bench --bench sim_engine

commit="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
git diff --quiet HEAD 2>/dev/null || commit="$commit-dirty"

jq -s --arg commit "$commit" --arg mode "$mode" --arg date "$(date -u +%FT%TZ)" '
  (map(select(.id == "jtl_pipeline_200x100_pulses")) | first) as $jtl
  | (map(select(.id == "jtl_batch32_sequential")) | first) as $batch
  | {
      commit: $commit,
      mode: $mode,
      generated_utc: $date,
      headline: {
        jtl_pipeline_200x100_melem_per_s:
          (if $jtl then ($jtl.elem_per_s / 1e6 * 1000 | round / 1000) else null end),
        jtl_batch32_sequential_items_per_s:
          (if $batch then (32e9 / $batch.mean_ns * 1000 | round / 1000) else null end)
      },
      benchmarks: .
    }' "$raw" > "$out"

# Sanity-gate the output in both modes: all six benchmarks reported and
# both headline rates present and positive.
jq -e '
  .commit and (.benchmarks | length) >= 6
  and .headline.jtl_pipeline_200x100_melem_per_s > 0
  and .headline.jtl_batch32_sequential_items_per_s > 0
' "$out" >/dev/null || { echo "bench.sh: $out failed validation" >&2; exit 1; }

if [[ "$mode" == smoke ]]; then
  echo "smoke bench OK ($(jq -r '.benchmarks | length' "$out") benchmarks, output validated)"
else
  echo "wrote $out:"
  jq '.headline' "$out"
fi
